//! The packed-lane view: up to 64 faulty circuits overlaid on the good
//! circuit as one [`PackedState`], the bit-parallel sibling of
//! [`FaultyView`](crate::FaultyView).
//!
//! Lane `i` of the view is circuit `circs[i]`: its value at a node is
//! the fault's forced value if any, else its divergence record, else
//! the good circuit's state — exactly the scalar overlay order. Reads
//! gather lazily into a dense two-plane cache (one gather per node per
//! chunk, however often the solver revisits it); writes land in the
//! cache and mark the node dirty, and [`PackedViewScratch::scatter`]
//! folds the dirty lanes back into the record lists after the settle —
//! writing the good circuit's value removes the record (convergence),
//! anything else installs or updates it. Records are never mutated
//! while a settle is in flight, which is what lets the view hold them
//! by shared reference.

use crate::overlay::Overrides;
use crate::records::StateLists;
use fmossim_netlist::{Conduction, Logic, Network, NodeId, TransistorId};
use fmossim_switch::{PackedConduction, PackedLogic, PackedState};
use std::cell::RefCell;

/// The lane mask for a chunk of `count` circuits (1..=64).
pub(crate) fn lane_mask(count: usize) -> u64 {
    debug_assert!((1..=64).contains(&count));
    if count == 64 {
        u64::MAX
    } else {
        (1u64 << count) - 1
    }
}

/// Lazily gathered node values for one chunk, epoch-stamped so that
/// starting the next chunk is O(1). Interior-mutable because gathering
/// happens on the trait's `&self` read path.
#[derive(Debug)]
struct GatherCache {
    values: Vec<PackedLogic>,
    loaded: Vec<u32>,
    epoch: u32,
}

/// Reusable storage behind [`PackedBucketView`], owned by the simulator
/// so that per-chunk setup allocates nothing in the steady state.
#[derive(Debug)]
pub(crate) struct PackedViewScratch {
    cache: RefCell<GatherCache>,
    /// Per node: lanes written during the current settle.
    dirty_mask: Vec<u64>,
    /// Nodes with a nonzero dirty mask, in first-write order.
    dirty: Vec<NodeId>,
    /// This chunk's stuck-node lanes: `(node, lanes, values)`, sorted
    /// by node with one merged entry per node.
    forced_nodes: Vec<(NodeId, u64, PackedLogic)>,
    /// This chunk's forced-conduction lanes, sorted by transistor
    /// (several entries per transistor when lanes force different
    /// classes).
    forced_trans: Vec<(TransistorId, u64, Conduction)>,
}

impl PackedViewScratch {
    pub(crate) fn new(num_nodes: usize) -> Self {
        PackedViewScratch {
            cache: RefCell::new(GatherCache {
                values: vec![PackedLogic::default(); num_nodes],
                loaded: vec![0; num_nodes],
                epoch: 0,
            }),
            dirty_mask: vec![0; num_nodes],
            dirty: Vec::new(),
            forced_nodes: Vec::new(),
            forced_trans: Vec::new(),
        }
    }

    /// Rebuilds the per-lane fault override tables for a new chunk and
    /// invalidates the gather cache.
    fn begin_chunk(&mut self, circs: &[u32], overrides: &[Overrides]) {
        debug_assert!(self.dirty.is_empty(), "previous chunk not scattered");
        let cache = self.cache.get_mut();
        cache.epoch = cache.epoch.wrapping_add(1);
        if cache.epoch == 0 {
            // Epoch wrapped: stale stamps could collide, so clear them.
            cache.loaded.fill(0);
            cache.epoch = 1;
        }
        self.forced_nodes.clear();
        self.forced_trans.clear();
        for (lane, &circ) in circs.iter().enumerate() {
            let bit = 1u64 << lane;
            let ov = &overrides[circ as usize];
            for &(n, v) in &ov.forced_nodes {
                let mut pv = PackedLogic::default();
                pv.set(u32::try_from(lane).expect("lane fits"), v);
                self.forced_nodes.push((n, bit, pv));
            }
            for &(t, c) in &ov.forced_transistors {
                self.forced_trans.push((t, bit, c));
            }
        }
        self.forced_nodes.sort_unstable_by_key(|&(n, _, _)| n);
        // Merge same-node entries so lookups are a single binary search.
        let mut w = 0;
        for r in 0..self.forced_nodes.len() {
            if w > 0 && self.forced_nodes[w - 1].0 == self.forced_nodes[r].0 {
                let (_, mask, pv) = self.forced_nodes[r];
                self.forced_nodes[w - 1].1 |= mask;
                let merged = &mut self.forced_nodes[w - 1].2;
                merged.overlay(pv, mask);
            } else {
                self.forced_nodes[w] = self.forced_nodes[r];
                w += 1;
            }
        }
        self.forced_nodes.truncate(w);
        self.forced_trans.sort_unstable_by_key(|&(t, m, _)| (t, m));
    }

    /// Folds every dirty lane back into the record lists: a value equal
    /// to the good circuit's removes the record (the lane converged),
    /// anything else installs or updates it. Leaves the scratch clean
    /// for the next chunk.
    pub(crate) fn scatter(&mut self, good: &[Logic], records: &mut StateLists, circs: &[u32]) {
        let cache = self.cache.get_mut();
        for &n in &self.dirty {
            let i = n.index();
            let mut m = self.dirty_mask[i];
            self.dirty_mask[i] = 0;
            let v = cache.values[i];
            while m != 0 {
                let lane = m.trailing_zeros();
                m &= m - 1;
                let circ = circs[lane as usize];
                let val = v.get(lane).expect("written lane holds a value");
                if val == good[i] {
                    records.remove(n, circ);
                } else {
                    records.set(n, circ, val);
                }
            }
        }
        self.dirty.clear();
    }
}

/// Up to 64 faulty circuits as one [`PackedState`]. Construction wires
/// the chunk's fault overrides into the scratch tables; the settle then
/// runs entirely against the gather cache, and the caller scatters the
/// dirty lanes back into the records afterwards.
pub(crate) struct PackedBucketView<'a, 'n> {
    net: &'n Network,
    good: &'a [Logic],
    records: &'a StateLists,
    /// Lane `i` is circuit `circs[i]`; ascending, so a record's circuit
    /// id maps to its lane by binary search.
    circs: &'a [u32],
    lanes: u64,
    scratch: &'a mut PackedViewScratch,
}

impl<'a, 'n> PackedBucketView<'a, 'n> {
    pub(crate) fn new(
        net: &'n Network,
        good: &'a [Logic],
        records: &'a StateLists,
        circs: &'a [u32],
        overrides: &[Overrides],
        scratch: &'a mut PackedViewScratch,
    ) -> Self {
        debug_assert!(circs.windows(2).all(|w| w[0] < w[1]), "lanes ascend");
        scratch.begin_chunk(circs, overrides);
        PackedBucketView {
            net,
            good,
            records,
            circs,
            lanes: lane_mask(circs.len()),
            scratch,
        }
    }

    /// Lanes of this chunk's stuck-node fault on `n`, if any.
    fn forced_node_lanes(&self, n: NodeId) -> u64 {
        self.scratch
            .forced_nodes
            .binary_search_by_key(&n, |&(fn_, _, _)| fn_)
            .map(|i| self.scratch.forced_nodes[i].1)
            .unwrap_or(0)
    }
}

impl PackedState for PackedBucketView<'_, '_> {
    fn network(&self) -> &Network {
        self.net
    }

    fn lanes(&self) -> u64 {
        self.lanes
    }

    fn node_state(&self, n: NodeId) -> PackedLogic {
        let i = n.index();
        let mut cache = self.scratch.cache.borrow_mut();
        let GatherCache {
            values,
            loaded,
            epoch,
        } = &mut *cache;
        if loaded[i] != *epoch {
            loaded[i] = *epoch;
            // Overlay order bottom-up: good, then records, then forced —
            // the scalar FaultyView's forced → record → good priority.
            let mut v = PackedLogic::splat(self.good[i], self.lanes);
            self.records.for_records_at(n, |c, rv| {
                if let Ok(lane) = self.circs.binary_search(&c) {
                    v.set(u32::try_from(lane).expect("lane fits"), rv);
                }
            });
            if let Ok(fi) = self
                .scratch
                .forced_nodes
                .binary_search_by_key(&n, |&(fn_, _, _)| fn_)
            {
                let (_, mask, fv) = self.scratch.forced_nodes[fi];
                v.overlay(fv, mask);
            }
            values[i] = v;
        }
        values[i]
    }

    fn set_node_state(&mut self, n: NodeId, lanes: u64, v: PackedLogic) {
        // Load before overlaying, or a later first read would gather
        // from the records and clobber this write.
        let _ = self.node_state(n);
        let i = n.index();
        self.scratch.cache.get_mut().values[i].overlay(v, lanes);
        let dm = &mut self.scratch.dirty_mask[i];
        if *dm == 0 {
            self.scratch.dirty.push(n);
        }
        *dm |= lanes;
    }

    fn is_input_lanes(&self, n: NodeId) -> u64 {
        let base = if self.net.node(n).is_input() {
            self.lanes
        } else {
            0
        };
        base | self.forced_node_lanes(n)
    }

    fn conduction(&self, t: TransistorId) -> PackedConduction {
        let tr = self.net.transistor(t);
        let mut pc = PackedConduction::from_gate(tr.ttype, self.node_state(tr.gate), self.lanes);
        let ft = &self.scratch.forced_trans;
        let start = ft.partition_point(|&(ftt, _, _)| ftt < t);
        for &(ftt, mask, c) in &ft[start..] {
            if ftt != t {
                break;
            }
            pc.closed &= !mask;
            pc.maybe &= !mask;
            match c {
                Conduction::Closed => pc.closed |= mask,
                Conduction::Maybe => pc.maybe |= mask,
                Conduction::Open => {}
            }
        }
        pc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::StateListStore;
    use fmossim_faults::FaultEffect;
    use fmossim_netlist::{Drive, Size, TransistorType};

    fn tiny() -> (Network, NodeId, NodeId, TransistorId) {
        let mut net = Network::new();
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::H);
        let s = net.add_storage("S", Size::S1);
        let t = net.add_transistor(TransistorType::N, Drive::D2, a, s, gnd);
        let _ = gnd;
        (net, a, s, t)
    }

    #[test]
    fn gather_layers_good_records_and_forces() {
        let (net, a, s, _) = tiny();
        let good = vec![Logic::L, Logic::H, Logic::X];
        let mut recs = StateLists::new(3, 8, StateListStore::SortedVec);
        recs.set(s, 3, Logic::L); // lane 1 diverges at S
        recs.set(s, 7, Logic::H); // not in this chunk: invisible
        let overrides = vec![
            Overrides::default(),
            Overrides::default(),
            Overrides::default(),
            Overrides::default(),
            Overrides::from_effect(FaultEffect::ForceNode {
                node: s,
                value: Logic::H,
            }),
        ];
        let circs = [2u32, 3, 4];
        let mut scratch = PackedViewScratch::new(3);
        let view = PackedBucketView::new(&net, &good, &recs, &circs, &overrides, &mut scratch);
        let vs = view.node_state(s);
        assert_eq!(vs.get(0), Some(Logic::X), "circuit 2: good value");
        assert_eq!(vs.get(1), Some(Logic::L), "circuit 3: its record");
        assert_eq!(vs.get(2), Some(Logic::H), "circuit 4: forced value");
        assert_eq!(view.is_input_lanes(s), 0b100, "forced lane is an input");
        assert_eq!(view.is_input_lanes(a), 0b111, "netlist inputs everywhere");
    }

    #[test]
    fn writes_scatter_back_as_records_or_convergence() {
        let (net, _, s, _) = tiny();
        let good = vec![Logic::L, Logic::H, Logic::X];
        let mut recs = StateLists::new(3, 4, StateListStore::SortedVec);
        recs.set(s, 1, Logic::L);
        let overrides = vec![Overrides::default(); 4];
        let circs = [1u32, 2];
        let mut scratch = PackedViewScratch::new(3);
        {
            let mut view =
                PackedBucketView::new(&net, &good, &recs, &circs, &overrides, &mut scratch);
            // Lane 0 (circuit 1) converges to good X; lane 1 (circuit 2)
            // diverges to H.
            let mut v = PackedLogic::default();
            v.set(0, Logic::X);
            v.set(1, Logic::H);
            view.set_node_state(s, 0b11, v);
            // The write is visible through the view immediately.
            assert_eq!(view.node_state(s).get(0), Some(Logic::X));
        }
        scratch.scatter(&good, &mut recs, &circs);
        assert_eq!(recs.get(s, 1), None, "converged record removed");
        assert_eq!(recs.get(s, 2), Some(Logic::H), "divergence recorded");
    }

    #[test]
    fn forced_transistor_lanes_override_gate() {
        let (net, _, _, t) = tiny();
        let good = vec![Logic::L, Logic::H, Logic::X];
        let recs = StateLists::new(3, 4, StateListStore::SortedVec);
        let overrides = vec![
            Overrides::default(),
            Overrides::from_effect(FaultEffect::ForceTransistor {
                t,
                cond: Conduction::Open,
            }),
            Overrides::default(),
            Overrides::from_effect(FaultEffect::ForceTransistor {
                t,
                cond: Conduction::Maybe,
            }),
        ];
        let circs = [1u32, 2, 3];
        let mut scratch = PackedViewScratch::new(3);
        let view = PackedBucketView::new(&net, &good, &recs, &circs, &overrides, &mut scratch);
        let pc = view.conduction(t);
        // Gate A is H: the N device conducts except where forced.
        assert_eq!(pc.closed, 0b010, "lane 0 forced open, lane 2 forced maybe");
        assert_eq!(pc.maybe, 0b100);
    }

    #[test]
    fn second_chunk_invalidates_gather_cache() {
        let (net, _, s, _) = tiny();
        let good = vec![Logic::L, Logic::H, Logic::X];
        let mut recs = StateLists::new(3, 4, StateListStore::SortedVec);
        let overrides = vec![Overrides::default(); 4];
        let mut scratch = PackedViewScratch::new(3);
        let circs = [1u32];
        {
            let view = PackedBucketView::new(&net, &good, &recs, &circs, &overrides, &mut scratch);
            assert_eq!(view.node_state(s).get(0), Some(Logic::X));
        }
        scratch.scatter(&good, &mut recs, &circs);
        recs.set(s, 1, Logic::H);
        let view = PackedBucketView::new(&net, &good, &recs, &circs, &overrides, &mut scratch);
        assert_eq!(
            view.node_state(s).get(0),
            Some(Logic::H),
            "new chunk re-gathers from the updated records"
        );
    }
}
