//! The good-machine tape: record the fault-free circuit's activity
//! once, replay it in every shard.
//!
//! FMOSSIM's concurrent algorithm derives all faulty-circuit work from
//! the good machine's solved vicinities (triggering, old-value
//! preservation, private events). That activity is *fault-independent*:
//! the good circuit's settle is identical no matter which fault shard
//! is being graded. A [`GoodTape`] captures it — per pattern, per
//! phase, one [`SettleTape`] of solved groups — so that a replaying
//! [`ConcurrentSim`](crate::ConcurrentSim) re-derives triggered faults
//! and private events from the log instead of re-settling the good
//! circuit. This removes the dominant serial fraction of fault-parallel
//! runs: `K` shards pay for one good-machine pass instead of `K`.
//!
//! ```text
//!            record (once)                   replay (per shard)
//!   ┌──────────────────────────┐    ┌────────────────────────────────┐
//!   │ TapeRecorder             │    │ ConcurrentSim::run_replayed    │
//!   │   good settle            │    │   read tape groups             │
//!   │   └─ solved groups ──────┼──▶ │   ├─ trigger shard's faults    │
//!   │      (support, changes)  │    │   ├─ preserve old values       │
//!   │                          │    │   └─ apply recorded changes    │
//!   └──────────────────────────┘    │   settle faulty circuits only  │
//!                                   └────────────────────────────────┘
//! ```
//!
//! Replay is **bit-identical** to recompute: the triggered sets,
//! preserved old values, private event seeds and final good state are
//! derived from the tape exactly as the live settle derived them, so
//! detection sets and canonical report order never change.
//!
//! Terminology: a *tape* is a replay log of solver activity; a *trace*
//! ([`fmossim_switch::Trace`]) is a waveform. The serial baseline's
//! good-output log is [`GoodObservations`](crate::GoodObservations).

use crate::pattern::Pattern;
use fmossim_netlist::Network;
use fmossim_switch::{DenseState, Engine, EngineConfig, SettleTape};
use std::time::Instant;

/// The good machine's recorded activity for one simulation phase.
#[derive(Clone, Debug, Default)]
pub struct PhaseTape {
    /// The solved vicinities of the phase's good settle, in solve
    /// order.
    pub settle: SettleTape,
}

/// The good machine's recorded activity for a pattern sequence,
/// produced by [`TapeRecorder::record`] (or the
/// [`GoodTape::record`] convenience) and consumed by
/// [`ConcurrentSim::run_replayed`](crate::ConcurrentSim::run_replayed).
///
/// A tape is positional: it must be replayed against the *same*
/// network, the same pattern sequence, and a simulator whose good
/// machine is in the same state the recorder was in when recording
/// started (for a single batch: the reset state).
#[derive(Clone, Debug, Default)]
pub struct GoodTape {
    /// Node count of the network the tape was recorded on (shape
    /// check).
    num_nodes: usize,
    /// `phases[pattern][phase]`, parallel to the recorded patterns.
    phases: Vec<Vec<PhaseTape>>,
    /// Wall-clock seconds the record pass took.
    record_seconds: f64,
}

impl GoodTape {
    /// Records the good machine from reset through `patterns` in one
    /// batch. Equivalent to `TapeRecorder::new(net, config).record(..)`.
    #[must_use]
    pub fn record(net: &Network, patterns: &[Pattern], config: EngineConfig) -> Self {
        TapeRecorder::new(net, config).record(patterns)
    }

    /// Node count of the network the tape was recorded on.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of recorded patterns.
    #[must_use]
    pub fn num_patterns(&self) -> usize {
        self.phases.len()
    }

    /// The recorded phase tapes of pattern `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn pattern(&self, p: usize) -> &[PhaseTape] {
        &self.phases[p]
    }

    /// Total solved good-machine vicinities across the whole tape.
    #[must_use]
    pub fn num_groups(&self) -> usize {
        self.phases
            .iter()
            .flatten()
            .map(|ph| ph.settle.num_groups())
            .sum()
    }

    /// Wall-clock seconds of the record pass.
    #[must_use]
    pub fn record_seconds(&self) -> f64 {
        self.record_seconds
    }

    /// Approximate heap footprint in bytes.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.phases
            .iter()
            .flatten()
            .map(|ph| ph.settle.heap_bytes())
            .sum()
    }

    /// True iff the tape's shape matches `patterns` on a network with
    /// `num_nodes` nodes — the precondition of replay.
    #[must_use]
    pub fn matches(&self, num_nodes: usize, patterns: &[Pattern]) -> bool {
        self.num_nodes == num_nodes
            && self.phases.len() == patterns.len()
            && self
                .phases
                .iter()
                .zip(patterns)
                .all(|(ph, p)| ph.len() == p.phases.len())
    }
}

/// Records [`GoodTape`]s by simulating the fault-free circuit. Owns the
/// good machine's state between batches, so successive
/// [`TapeRecorder::record`] calls produce tapes that replay a long
/// sequence in pattern batches (the per-batch seam shard autotuners
/// re-plan at).
#[derive(Clone, Debug)]
pub struct TapeRecorder<'n> {
    net: &'n Network,
    good: DenseState<'n>,
    engine: Engine,
}

impl<'n> TapeRecorder<'n> {
    /// Creates a recorder at the reset state (inputs at declared
    /// defaults, storage at `X`), with the initial all-storage
    /// perturbation pending — exactly how a fresh simulator starts.
    #[must_use]
    pub fn new(net: &'n Network, config: EngineConfig) -> Self {
        let good = DenseState::new(net);
        let mut engine = Engine::with_config(net, config);
        engine.perturb_all_storage(&good);
        TapeRecorder { net, good, engine }
    }

    /// The good machine's current state (advances as batches are
    /// recorded).
    #[must_use]
    pub fn good_state(&self) -> &DenseState<'n> {
        &self.good
    }

    /// Simulates the good machine through `patterns`, continuing from
    /// the current state, and returns the recorded tape.
    #[must_use]
    pub fn record(&mut self, patterns: &[Pattern]) -> GoodTape {
        let t0 = Instant::now();
        let mut tape = GoodTape {
            num_nodes: self.net.num_nodes(),
            phases: Vec::with_capacity(patterns.len()),
            record_seconds: 0.0,
        };
        for pattern in patterns {
            let mut phase_tapes = Vec::with_capacity(pattern.phases.len());
            for phase in &pattern.phases {
                // `apply_input` skips unchanged inputs by the same
                // `old == v` test the replaying simulator makes, so
                // record and replay agree on the change decisions
                // without a second copy of them here.
                for &(n, v) in &phase.inputs {
                    self.engine.apply_input(&mut self.good, n, v);
                }
                let mut settle = SettleTape::default();
                let net = self.net;
                let rep = self
                    .engine
                    .settle_observed(&mut self.good, |g| settle.push_group(net, g));
                settle.finish(&rep);
                phase_tapes.push(PhaseTape { settle });
            }
            tape.phases.push(phase_tapes);
        }
        tape.record_seconds = t0.elapsed().as_secs_f64();
        tape
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Phase;
    use fmossim_netlist::{Drive, Logic, NodeId, Size, TransistorType};
    use fmossim_switch::SwitchState;

    fn inverter() -> (Network, NodeId, NodeId) {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::L);
        let out = net.add_storage("OUT", Size::S1);
        net.add_transistor(TransistorType::P, Drive::D2, a, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, a, out, gnd);
        (net, a, out)
    }

    #[test]
    fn tape_shape_matches_patterns() {
        let (net, a, out) = inverter();
        let patterns = vec![
            Pattern::new(vec![Phase::strobe(vec![(a, Logic::L)])]),
            Pattern::new(vec![
                Phase::apply(vec![(a, Logic::H)]),
                Phase::strobe(vec![(a, Logic::L)]),
            ]),
        ];
        let tape = GoodTape::record(&net, &patterns, EngineConfig::default());
        assert_eq!(tape.num_patterns(), 2);
        assert_eq!(tape.pattern(0).len(), 1);
        assert_eq!(tape.pattern(1).len(), 2);
        assert!(tape.matches(net.num_nodes(), &patterns));
        assert!(!tape.matches(net.num_nodes() + 1, &patterns));
        assert!(!tape.matches(net.num_nodes(), &patterns[..1]));
        assert!(tape.num_groups() > 0, "initial settle solves OUT");
        assert!(tape.record_seconds() >= 0.0);
        assert!(tape.heap_bytes() > 0);
        let _ = out;
    }

    #[test]
    fn recorded_changes_track_good_values() {
        let (net, a, out) = inverter();
        let patterns = vec![
            Pattern::new(vec![Phase::strobe(vec![(a, Logic::L)])]),
            Pattern::new(vec![Phase::strobe(vec![(a, Logic::H)])]),
        ];
        let mut rec = TapeRecorder::new(&net, EngineConfig::default());
        let tape = rec.record(&patterns);
        // Pattern 0: OUT settles X -> H. Pattern 1: OUT flips H -> L.
        let all: Vec<(NodeId, Logic, Logic)> = (0..tape.num_patterns())
            .flat_map(|p| tape.pattern(p))
            .flat_map(|ph| {
                ph.settle
                    .groups()
                    .flat_map(|g| g.changed.to_vec())
                    .collect::<Vec<_>>()
            })
            .collect();
        assert_eq!(
            all,
            vec![(out, Logic::X, Logic::H), (out, Logic::H, Logic::L)]
        );
        // The recorder's good machine ends in the final state.
        assert_eq!(rec.good_state().node_state(out), Logic::L);
    }

    #[test]
    fn batched_recording_continues_state() {
        let (net, a, out) = inverter();
        let p0 = vec![Pattern::new(vec![Phase::strobe(vec![(a, Logic::L)])])];
        let p1 = vec![Pattern::new(vec![Phase::strobe(vec![(a, Logic::H)])])];
        let mut rec = TapeRecorder::new(&net, EngineConfig::default());
        let t0 = rec.record(&p0);
        let t1 = rec.record(&p1);
        assert_eq!(t0.num_patterns(), 1);
        assert_eq!(t1.num_patterns(), 1);
        // The second batch's settle starts from the first batch's final
        // state: exactly one change, H -> L.
        let changes: Vec<(NodeId, Logic, Logic)> = t1.pattern(0)[0]
            .settle
            .groups()
            .flat_map(|g| g.changed.to_vec())
            .collect();
        assert_eq!(changes, vec![(out, Logic::H, Logic::L)]);
    }
}
