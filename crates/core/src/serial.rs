//! The serial fault-simulation baseline and the paper's serial-time
//! estimator.
//!
//! Serial simulation runs each faulty circuit individually, from reset,
//! through the pattern sequence until it produces an observed output
//! different from the good circuit (then it stops — "simulated
//! individually until it produces an output different from that of the
//! good machine", §5). Total time is the sum over faults.
//!
//! The paper *estimated* most serial times rather than running them
//! ("All serial fault simulation times were estimated by summing over
//! all faults the number of patterns required to detect the fault times
//! the average time to simulate the good circuit for 1 pattern");
//! [`SerialReport::paper_estimate_seconds`] reproduces exactly that
//! estimator, and the benches report both the measured and the
//! estimated serial time.

use crate::overlay::{Overrides, SerialState};
use crate::pattern::Pattern;
use crate::report::{Detection, DetectionPolicy};
use fmossim_faults::{Fault, FaultId};
use fmossim_netlist::{Logic, Network, NodeId};
use fmossim_switch::{Engine, EngineConfig, LogicSim, SwitchState};
use std::time::Instant;

/// Configuration of the serial simulator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SerialConfig {
    /// Scheduler configuration.
    pub engine: EngineConfig,
    /// What counts as a detection.
    pub policy: DetectionPolicy,
    /// Stop simulating a fault at its first detection (the baseline's
    /// defining behaviour). Disable to collect full output traces for
    /// equivalence checking against the concurrent simulator.
    pub stop_at_detection: bool,
}

impl SerialConfig {
    /// The paper's baseline behaviour.
    #[must_use]
    pub fn paper() -> Self {
        SerialConfig {
            stop_at_detection: true,
            ..SerialConfig::default()
        }
    }
}

/// The good circuit's observed outputs: for every pattern, for every
/// strobe phase, the output values — plus timing of the good-only
/// simulation (the paper's "simulation of the good circuit alone").
///
/// Naming note: this is an *observation log* (strobed output values),
/// not a waveform ([`fmossim_switch::Trace`]) and not a replay log
/// ([`GoodTape`](crate::GoodTape)). It was called `GoodTrace` before
/// the tape subsystem landed; the old name remains as a deprecated
/// alias.
#[derive(Clone, Debug, Default)]
pub struct GoodObservations {
    /// `strobes[pattern][strobe_index][output_index]`.
    pub strobes: Vec<Vec<Vec<Logic>>>,
    /// Seconds per pattern for the good-only simulation.
    pub pattern_seconds: Vec<f64>,
    /// Total good-only seconds.
    pub total_seconds: f64,
}

/// Deprecated name of [`GoodObservations`] — "trace" now means a
/// waveform ([`fmossim_switch::Trace`]) and "tape" a replay log
/// ([`GoodTape`](crate::GoodTape)).
#[deprecated(since = "0.2.0", note = "renamed to `GoodObservations`")]
pub type GoodTrace = GoodObservations;

impl GoodObservations {
    /// Average good-circuit time per pattern — the unit of the paper's
    /// serial estimator.
    #[must_use]
    pub fn avg_pattern_seconds(&self) -> f64 {
        if self.pattern_seconds.is_empty() {
            0.0
        } else {
            self.total_seconds / self.pattern_seconds.len() as f64
        }
    }
}

/// Result of serially simulating one fault.
#[derive(Clone, Debug, PartialEq)]
pub struct SerialOutcome {
    /// The simulated fault.
    pub fault: FaultId,
    /// First detection, if any.
    pub detection: Option<Detection>,
    /// Patterns simulated before stopping (all of them if undetected or
    /// `stop_at_detection` is off).
    pub patterns_run: usize,
    /// Wall-clock seconds for this fault.
    pub seconds: f64,
    /// Observed-output log (only collected when `stop_at_detection`
    /// is off): `strobes[pattern][strobe_index][output_index]`.
    pub strobes: Vec<Vec<Vec<Logic>>>,
    /// True iff any settle hit the oscillation cap and was X-damped.
    pub damped: bool,
}

/// Aggregate result of a serial run over a fault list.
#[derive(Clone, Debug, Default)]
pub struct SerialReport {
    /// Per-fault outcomes, in fault order.
    pub outcomes: Vec<SerialOutcome>,
    /// Total measured wall-clock seconds across all faults (excluding
    /// the good-only reference run).
    pub total_seconds: f64,
    /// The good-only reference observations and timing.
    pub good: GoodObservations,
}

impl SerialReport {
    /// Number of detected faults.
    #[must_use]
    pub fn detected(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.detection.is_some())
            .count()
    }

    /// The paper's serial-time estimator: Σ over faults of
    /// (patterns to detect, or the whole sequence if undetected) ×
    /// (average good-circuit seconds per pattern).
    #[must_use]
    pub fn paper_estimate_seconds(&self, total_patterns: usize) -> f64 {
        let avg = self.good.avg_pattern_seconds();
        self.outcomes
            .iter()
            .map(|o| {
                let patterns = o.detection.map_or(total_patterns, |d| d.pattern + 1);
                patterns as f64 * avg
            })
            .sum()
    }
}

/// The serial fault simulator.
///
/// # Example
///
/// ```
/// use fmossim_netlist::{Network, Logic, Size, Drive, TransistorType};
/// use fmossim_faults::FaultUniverse;
/// use fmossim_core::{SerialSim, SerialConfig, Pattern, Phase};
///
/// let mut net = Network::new();
/// let vdd = net.add_input("Vdd", Logic::H);
/// let gnd = net.add_input("Gnd", Logic::L);
/// let a = net.add_input("A", Logic::L);
/// let out = net.add_storage("OUT", Size::S1);
/// net.add_transistor(TransistorType::P, Drive::D2, a, vdd, out);
/// net.add_transistor(TransistorType::N, Drive::D2, a, out, gnd);
///
/// let universe = FaultUniverse::stuck_nodes(&net);
/// let patterns = vec![
///     Pattern::new(vec![Phase::strobe(vec![(a, Logic::L)])]),
///     Pattern::new(vec![Phase::strobe(vec![(a, Logic::H)])]),
/// ];
/// let sim = SerialSim::new(&net, SerialConfig::paper());
/// let report = sim.run(universe.faults(), &patterns, &[out]);
/// assert_eq!(report.detected(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct SerialSim<'n> {
    net: &'n Network,
    config: SerialConfig,
}

impl<'n> SerialSim<'n> {
    /// Creates a serial simulator for `net`.
    #[must_use]
    pub fn new(net: &'n Network, config: SerialConfig) -> Self {
        SerialSim { net, config }
    }

    /// Simulates the fault-free circuit through `patterns`, recording
    /// the observed outputs at every strobe and per-pattern timing.
    #[must_use]
    pub fn observe_good(&self, patterns: &[Pattern], outputs: &[NodeId]) -> GoodObservations {
        let t0 = Instant::now();
        let mut sim = LogicSim::with_config(self.net, self.config.engine);
        let mut trace = GoodObservations::default();
        for pattern in patterns {
            let p0 = Instant::now();
            let mut strobes = Vec::new();
            for phase in &pattern.phases {
                for &(n, v) in &phase.inputs {
                    sim.set_input(n, v);
                }
                sim.settle();
                if phase.strobe {
                    strobes.push(outputs.iter().map(|&o| sim.get(o)).collect());
                }
            }
            trace.pattern_seconds.push(p0.elapsed().as_secs_f64());
            trace.strobes.push(strobes);
        }
        trace.total_seconds = t0.elapsed().as_secs_f64();
        trace
    }

    /// Deprecated name of [`SerialSim::observe_good`].
    #[deprecated(since = "0.2.0", note = "renamed to `observe_good`")]
    #[must_use]
    pub fn good_trace(&self, patterns: &[Pattern], outputs: &[NodeId]) -> GoodObservations {
        self.observe_good(patterns, outputs)
    }

    /// Simulates one fault through `patterns`, comparing observed
    /// outputs against `good` at every strobe.
    #[must_use]
    pub fn run_fault(
        &self,
        fault_id: FaultId,
        fault: Fault,
        patterns: &[Pattern],
        outputs: &[NodeId],
        good: &GoodObservations,
    ) -> SerialOutcome {
        let t0 = Instant::now();
        let ov = Overrides::from_effect(fault.effect());
        let mut st = SerialState::new(self.net, ov);
        let mut engine = Engine::with_config(self.net, self.config.engine);
        engine.perturb_all_storage(&st);
        // The fault is active from reset: wake its neighbourhood.
        for n in fault.initial_seeds(self.net) {
            engine.perturb(n);
        }
        let mut outcome = SerialOutcome {
            fault: fault_id,
            detection: None,
            patterns_run: 0,
            seconds: 0.0,
            strobes: Vec::new(),
            damped: false,
        };
        'patterns: for (pi, pattern) in patterns.iter().enumerate() {
            let mut strobe_idx = 0;
            let mut pattern_strobes = Vec::new();
            for (phi, phase) in pattern.phases.iter().enumerate() {
                for &(n, v) in &phase.inputs {
                    // A forced input (stuck control) ignores stimulus.
                    if st.is_input(n) && st.overrides().forced_value(n).is_none() {
                        engine.apply_input(&mut st, n, v);
                    }
                }
                outcome.damped |= engine.settle(&mut st).oscillation_damped;
                if phase.strobe {
                    let values: Vec<Logic> = outputs.iter().map(|&o| st.node_state(o)).collect();
                    let goodv = &good.strobes[pi][strobe_idx];
                    if outcome.detection.is_none() {
                        for (oi, (&f, &g)) in values.iter().zip(goodv.iter()).enumerate() {
                            let differs = f != g;
                            let counts = match self.config.policy {
                                DetectionPolicy::AnyDifference => differs,
                                DetectionPolicy::DefiniteOnly => {
                                    differs && f.is_definite() && g.is_definite()
                                }
                            };
                            if counts {
                                outcome.detection = Some(Detection {
                                    fault: fault_id,
                                    pattern: pi,
                                    phase: phi,
                                    good: g,
                                    faulty: f,
                                });
                                let _ = oi;
                                break;
                            }
                        }
                    }
                    strobe_idx += 1;
                    pattern_strobes.push(values);
                }
            }
            outcome.patterns_run = pi + 1;
            if !self.config.stop_at_detection {
                outcome.strobes.push(pattern_strobes);
            }
            if self.config.stop_at_detection && outcome.detection.is_some() {
                break 'patterns;
            }
        }
        outcome.seconds = t0.elapsed().as_secs_f64();
        outcome
    }

    /// Simulates every fault serially. The good reference trace is
    /// computed first and included in the report.
    #[must_use]
    pub fn run(&self, faults: &[Fault], patterns: &[Pattern], outputs: &[NodeId]) -> SerialReport {
        let good = self.observe_good(patterns, outputs);
        let t0 = Instant::now();
        let outcomes = faults
            .iter()
            .enumerate()
            .map(|(k, &f)| {
                self.run_fault(
                    FaultId(u32::try_from(k).expect("fault id fits")),
                    f,
                    patterns,
                    outputs,
                    &good,
                )
            })
            .collect();
        SerialReport {
            outcomes,
            total_seconds: t0.elapsed().as_secs_f64(),
            good,
        }
    }

    /// As [`SerialSim::run`] but spreading the independent per-fault
    /// simulations over `threads` OS threads. Serial fault simulation
    /// is embarrassingly parallel — each fault owns a private circuit
    /// copy — which the concurrent algorithm is *not* (its whole point
    /// is shared state); this is the modern counterweight the 1985
    /// paper could not weigh. Outcomes are returned in fault order and
    /// are bit-identical to the sequential run.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn run_parallel(
        &self,
        faults: &[Fault],
        patterns: &[Pattern],
        outputs: &[NodeId],
        threads: usize,
    ) -> SerialReport {
        assert!(threads > 0, "need at least one thread");
        let good = self.observe_good(patterns, outputs);
        let t0 = Instant::now();
        let chunk = faults.len().div_ceil(threads.max(1)).max(1);
        let mut outcomes: Vec<SerialOutcome> = Vec::with_capacity(faults.len());
        std::thread::scope(|scope| {
            let good = &good;
            let handles: Vec<_> = faults
                .chunks(chunk)
                .enumerate()
                .map(|(ci, chunk_faults)| {
                    scope.spawn(move || {
                        chunk_faults
                            .iter()
                            .enumerate()
                            .map(|(j, &f)| {
                                let k = ci * chunk + j;
                                self.run_fault(
                                    FaultId(u32::try_from(k).expect("fault id fits")),
                                    f,
                                    patterns,
                                    outputs,
                                    good,
                                )
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                outcomes.extend(h.join().expect("serial worker panicked"));
            }
        });
        SerialReport {
            outcomes,
            total_seconds: t0.elapsed().as_secs_f64(),
            good,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Phase;
    use fmossim_faults::FaultUniverse;
    use fmossim_netlist::{Drive, Size, TransistorType};

    fn inverter() -> (Network, NodeId, NodeId) {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::L);
        let out = net.add_storage("OUT", Size::S1);
        net.add_transistor(TransistorType::P, Drive::D2, a, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, a, out, gnd);
        (net, a, out)
    }

    fn toggles(a: NodeId) -> Vec<Pattern> {
        vec![
            Pattern::new(vec![Phase::strobe(vec![(a, Logic::L)])]),
            Pattern::new(vec![Phase::strobe(vec![(a, Logic::H)])]),
        ]
    }

    #[test]
    fn observe_good_records_outputs() {
        let (net, a, out) = inverter();
        let sim = SerialSim::new(&net, SerialConfig::paper());
        let trace = sim.observe_good(&toggles(a), &[out]);
        assert_eq!(trace.strobes.len(), 2);
        assert_eq!(trace.strobes[0], vec![vec![Logic::H]]);
        assert_eq!(trace.strobes[1], vec![vec![Logic::L]]);
        assert_eq!(trace.pattern_seconds.len(), 2);
        assert!(trace.avg_pattern_seconds() >= 0.0);
    }

    #[test]
    fn detects_and_stops_early() {
        let (net, a, out) = inverter();
        let universe = FaultUniverse::stuck_nodes(&net);
        let sim = SerialSim::new(&net, SerialConfig::paper());
        let report = sim.run(universe.faults(), &toggles(a), &[out]);
        assert_eq!(report.detected(), 2);
        // stuck-at-0 detected on pattern 0 → stops after 1 pattern.
        assert_eq!(report.outcomes[0].patterns_run, 1);
        assert_eq!(report.outcomes[1].patterns_run, 2);
    }

    #[test]
    fn full_trace_mode_keeps_going() {
        let (net, a, out) = inverter();
        let universe = FaultUniverse::stuck_nodes(&net);
        let sim = SerialSim::new(
            &net,
            SerialConfig {
                stop_at_detection: false,
                ..SerialConfig::default()
            },
        );
        let report = sim.run(universe.faults(), &toggles(a), &[out]);
        for o in &report.outcomes {
            assert_eq!(o.patterns_run, 2);
            assert_eq!(o.strobes.len(), 2);
        }
        // OUT stuck-at-0: output reads 0 under both patterns.
        assert_eq!(report.outcomes[0].strobes[0][0], vec![Logic::L]);
        assert_eq!(report.outcomes[0].strobes[1][0], vec![Logic::L]);
    }

    #[test]
    fn estimator_matches_hand_calculation() {
        let (net, a, out) = inverter();
        let universe = FaultUniverse::stuck_nodes(&net);
        let sim = SerialSim::new(&net, SerialConfig::paper());
        let report = sim.run(universe.faults(), &toggles(a), &[out]);
        let avg = report.good.avg_pattern_seconds();
        // Fault 0 detected at pattern 1 (1 pattern), fault 1 at 2.
        let want = (1.0 + 2.0) * avg;
        let got = report.paper_estimate_seconds(2);
        assert!((want - got).abs() < 1e-12, "want {want}, got {got}");
    }

    #[test]
    fn parallel_matches_sequential() {
        let (net, a, out) = inverter();
        let universe =
            FaultUniverse::stuck_nodes(&net).union(FaultUniverse::stuck_transistors(&net));
        let sim = SerialSim::new(&net, SerialConfig::paper());
        let seq = sim.run(universe.faults(), &toggles(a), &[out]);
        for threads in [1, 2, 3, 16] {
            let par = sim.run_parallel(universe.faults(), &toggles(a), &[out], threads);
            assert_eq!(par.outcomes.len(), seq.outcomes.len());
            for (s, p) in seq.outcomes.iter().zip(par.outcomes.iter()) {
                assert_eq!(s.fault, p.fault, "order preserved with {threads} threads");
                assert_eq!(s.detection, p.detection);
                assert_eq!(s.patterns_run, p.patterns_run);
            }
        }
    }

    #[test]
    fn undetected_fault_runs_all_patterns() {
        let (mut net, a, out) = inverter();
        let gnd = net.find_node("Gnd").expect("exists");
        let dead = net.add_storage("DEAD", Size::S1);
        let en = net.add_input("EN", Logic::L);
        net.add_transistor(TransistorType::N, Drive::D2, en, dead, gnd);
        let faults = vec![Fault::NodeStuck {
            node: dead,
            value: Logic::H,
        }];
        let sim = SerialSim::new(&net, SerialConfig::paper());
        let report = sim.run(&faults, &toggles(a), &[out]);
        assert_eq!(report.detected(), 0);
        assert_eq!(report.outcomes[0].patterns_run, 2);
        // Estimator charges the full sequence for undetected faults.
        let avg = report.good.avg_pattern_seconds();
        assert!((report.paper_estimate_seconds(2) - 2.0 * avg).abs() < 1e-12);
    }
}
