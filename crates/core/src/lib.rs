//! FMOSSIM core: the concurrent switch-level fault simulator.
//!
//! Rust reproduction of the system evaluated in Bryant & Schuster,
//! *Performance Evaluation of FMOSSIM, a Concurrent Switch-Level Fault
//! Simulator*, DAC 1985. This crate implements the paper's primary
//! contribution:
//!
//! * [`ConcurrentSim`] — simulates the good circuit plus an arbitrary
//!   number of faulty circuits at once. The good circuit is simulated
//!   in its entirety; faulty circuits exist only as per-node divergence
//!   records and are selectively re-simulated where and when their
//!   behaviour can differ (see the module docs of
//!   [`concurrent`](crate::ConcurrentSim) for the algorithm).
//! * [`SerialSim`] — the baseline the paper compares against: each
//!   faulty circuit simulated separately until it produces an output
//!   different from the good circuit; plus the paper's estimator for
//!   serial time (patterns-to-detect × average good-circuit time).
//! * [`Pattern`]/[`Phase`] — stimulus description (a paper "pattern" is
//!   six input settings cycling the clocks).
//! * [`RunReport`]/[`Detection`] — the measurements behind the paper's
//!   figures: per-pattern time, cumulative detections, coverage.
//!
//! The simulators are generic over fault types via
//! [`fmossim_faults::Fault`]; node stuck-at, transistor stuck-open/
//! closed, bridge shorts and line opens all reduce to per-circuit
//! overrides of the shared network — no structural mutation anywhere.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod concurrent;
mod dictionary;
mod overlay;
mod packed;
mod pattern;
mod records;
mod report;
mod serial;
mod tape;

pub use arena::{CircuitId, SimArena};
pub use concurrent::{ConcurrentConfig, ConcurrentSim, FaultSnapshot};
pub use dictionary::{FaultDictionary, Syndrome};
// `DenseState` is re-exported so batch drivers can snapshot the good
// machine (`TapeRecorder::good_state`) and hand it to
// `ConcurrentSim::resume` without depending on `fmossim-switch`.
pub use fmossim_switch::DenseState;
// `Engine` rides along for the engine-reuse constructors
// (`ConcurrentSim::new_with_engine` / `take_engine`): batch drivers
// pool engines across simulator rebuilds without depending on
// `fmossim-switch`.
pub use fmossim_switch::Engine;
pub use overlay::{FaultyView, Overrides, SerialState};
pub use pattern::{stimulus_content_hash, Pattern, Phase};
pub use records::{StateListStore, StateLists};
pub use report::{Detection, DetectionPolicy, PatternStats, RunReport};
#[allow(deprecated)]
pub use serial::GoodTrace;
pub use serial::{GoodObservations, SerialConfig, SerialOutcome, SerialReport, SerialSim};
pub use tape::{GoodTape, PhaseTape, TapeRecorder};
