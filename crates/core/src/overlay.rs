//! Per-circuit state views: the faulty-circuit overlay and the serial
//! simulator's mutated-copy view.

use crate::records::StateLists;
use fmossim_faults::FaultEffect;
use fmossim_netlist::{Conduction, Logic, Network, NodeId, TransistorId};
use fmossim_switch::{DenseState, SwitchState};

/// The structural overrides implementing one faulty circuit. The
/// paper's experiments use single faults (one entry), but the lists
/// support multiple simultaneous faults per circuit — double-fault and
/// fault-masking studies need nothing further.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Overrides {
    /// Nodes forced to behave as inputs with fixed values.
    pub forced_nodes: Vec<(NodeId, Logic)>,
    /// Transistors forced to fixed conduction states.
    pub forced_transistors: Vec<(TransistorId, Conduction)>,
}

impl Overrides {
    /// Builds the override set for a single fault effect.
    #[must_use]
    pub fn from_effect(effect: FaultEffect) -> Self {
        Overrides::from_effects([effect])
    }

    /// Builds the override set for several simultaneous fault effects.
    /// Later `ForceNode` entries on the same node shadow earlier ones;
    /// same for transistors.
    #[must_use]
    pub fn from_effects(effects: impl IntoIterator<Item = FaultEffect>) -> Self {
        let mut ov = Overrides::default();
        for e in effects {
            match e {
                FaultEffect::ForceNode { node, value } => {
                    if let Some(slot) = ov.forced_nodes.iter_mut().find(|(n, _)| *n == node) {
                        slot.1 = value;
                    } else {
                        ov.forced_nodes.push((node, value));
                    }
                }
                FaultEffect::ForceTransistor { t, cond } => {
                    if let Some(slot) = ov.forced_transistors.iter_mut().find(|(tt, _)| *tt == t) {
                        slot.1 = cond;
                    } else {
                        ov.forced_transistors.push((t, cond));
                    }
                }
            }
        }
        ov
    }

    /// The forced value of `n`, if this circuit forces it.
    #[inline]
    #[must_use]
    pub fn forced_value(&self, n: NodeId) -> Option<Logic> {
        self.forced_nodes
            .iter()
            .find(|(fn_, _)| *fn_ == n)
            .map(|&(_, v)| v)
    }

    /// The forced conduction of `t`, if this circuit forces it.
    #[inline]
    #[must_use]
    pub fn forced_conduction(&self, t: TransistorId) -> Option<Conduction> {
        self.forced_transistors
            .iter()
            .find(|(ft, _)| *ft == t)
            .map(|&(_, c)| c)
    }

    /// True iff no overrides are present (the good circuit).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.forced_nodes.is_empty() && self.forced_transistors.is_empty()
    }
}

/// A faulty circuit's state in the concurrent simulator: divergence
/// records overlaid on the good circuit's dense state, plus the fault's
/// structural overrides.
///
/// Reads fall back to the good circuit (a node without a record has the
/// good circuit's state); writes maintain the record lists — writing a
/// value equal to the good circuit's removes the record (the circuit
/// *converged* at that node).
pub struct FaultyView<'a, 'n> {
    net: &'n Network,
    good: &'a [Logic],
    records: &'a mut StateLists,
    circuit: u32,
    ov: &'a Overrides,
}

impl<'a, 'n> FaultyView<'a, 'n> {
    /// Creates the view of circuit `circuit` (`>= 1`).
    pub fn new(
        net: &'n Network,
        good: &'a [Logic],
        records: &'a mut StateLists,
        circuit: u32,
        ov: &'a Overrides,
    ) -> Self {
        debug_assert!(circuit >= 1, "circuit 0 is the good circuit");
        FaultyView {
            net,
            good,
            records,
            circuit,
            ov,
        }
    }
}

impl SwitchState for FaultyView<'_, '_> {
    fn network(&self) -> &Network {
        self.net
    }

    fn node_state(&self, n: NodeId) -> Logic {
        if let Some(v) = self.ov.forced_value(n) {
            return v;
        }
        self.records
            .get(n, self.circuit)
            .unwrap_or(self.good[n.index()])
    }

    fn set_node_state(&mut self, n: NodeId, v: Logic) {
        if v == self.good[n.index()] {
            self.records.remove(n, self.circuit);
        } else {
            self.records.set(n, self.circuit, v);
        }
    }

    fn is_input(&self, n: NodeId) -> bool {
        self.ov.forced_value(n).is_some() || self.net.node(n).is_input()
    }

    fn conduction(&self, t: TransistorId) -> Conduction {
        if let Some(cond) = self.ov.forced_conduction(t) {
            return cond;
        }
        let tr = self.net.transistor(t);
        tr.ttype.conduction(self.node_state(tr.gate))
    }
}

/// A faulty circuit's state in the *serial* simulator: a private dense
/// state plus the fault's overrides. Used by the serial baseline and by
/// the concurrent-vs-serial equivalence tests.
#[derive(Clone, Debug)]
pub struct SerialState<'n> {
    dense: DenseState<'n>,
    ov: Overrides,
}

impl<'n> SerialState<'n> {
    /// Creates a reset-state serial view with the given overrides.
    #[must_use]
    pub fn new(net: &'n Network, ov: Overrides) -> Self {
        SerialState {
            dense: DenseState::new(net),
            ov,
        }
    }

    /// The overrides in effect.
    #[must_use]
    pub fn overrides(&self) -> &Overrides {
        &self.ov
    }
}

impl SwitchState for SerialState<'_> {
    fn network(&self) -> &Network {
        self.dense.network()
    }

    fn node_state(&self, n: NodeId) -> Logic {
        if let Some(v) = self.ov.forced_value(n) {
            return v;
        }
        self.dense.node_state(n)
    }

    fn set_node_state(&mut self, n: NodeId, v: Logic) {
        self.dense.set_node_state(n, v);
    }

    fn is_input(&self, n: NodeId) -> bool {
        self.ov.forced_value(n).is_some() || self.dense.is_input(n)
    }

    fn conduction(&self, t: TransistorId) -> Conduction {
        if let Some(cond) = self.ov.forced_conduction(t) {
            return cond;
        }
        let tr = self.network().transistor(t);
        tr.ttype.conduction(self.node_state(tr.gate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::StateListStore;
    use fmossim_netlist::{Drive, Size, TransistorType};

    fn tiny() -> (Network, NodeId, NodeId, TransistorId) {
        let mut net = Network::new();
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::H);
        let s = net.add_storage("S", Size::S1);
        let t = net.add_transistor(TransistorType::N, Drive::D2, a, s, gnd);
        (net, a, s, t)
    }

    #[test]
    fn view_reads_good_until_diverged() {
        let (net, _, s, _) = tiny();
        let good = vec![Logic::L, Logic::H, Logic::H];
        let mut recs = StateLists::new(3, 2, StateListStore::SortedVec);
        let ov = Overrides::default();
        let mut view = FaultyView::new(&net, &good, &mut recs, 1, &ov);
        assert_eq!(view.node_state(s), Logic::H, "falls back to good");
        view.set_node_state(s, Logic::L);
        assert_eq!(view.node_state(s), Logic::L, "record wins");
        // Converging removes the record.
        view.set_node_state(s, Logic::H);
        assert!(recs.is_empty());
    }

    #[test]
    fn forced_node_acts_as_input() {
        let (net, _, s, _) = tiny();
        let good = vec![Logic::L, Logic::H, Logic::H];
        let mut recs = StateLists::new(3, 2, StateListStore::SortedVec);
        let ov = Overrides::from_effect(FaultEffect::ForceNode {
            node: s,
            value: Logic::L,
        });
        let view = FaultyView::new(&net, &good, &mut recs, 1, &ov);
        assert!(view.is_input(s));
        assert_eq!(view.node_state(s), Logic::L);
    }

    #[test]
    fn forced_transistor_ignores_gate() {
        let (net, a, _, t) = tiny();
        let good = vec![Logic::L, Logic::H, Logic::H];
        let mut recs = StateLists::new(3, 2, StateListStore::SortedVec);
        let ov = Overrides::from_effect(FaultEffect::ForceTransistor {
            t,
            cond: Conduction::Open,
        });
        let view = FaultyView::new(&net, &good, &mut recs, 1, &ov);
        // Gate A is high (transistor would conduct) but the fault holds
        // it open.
        assert_eq!(view.node_state(a), Logic::H);
        assert_eq!(view.conduction(t), Conduction::Open);
    }

    #[test]
    fn conduction_uses_divergent_gate_value() {
        let (net, a, _, t) = tiny();
        let good = vec![Logic::L, Logic::H, Logic::H];
        let mut recs = StateLists::new(3, 2, StateListStore::SortedVec);
        // Circuit 1 diverges on the gate: A is low there. (A is an input
        // node; record-on-input is how fault-control flips are stored.)
        recs.set(a, 1, Logic::L);
        let ov = Overrides::default();
        let view = FaultyView::new(&net, &good, &mut recs, 1, &ov);
        assert_eq!(view.conduction(t), Conduction::Open);
    }

    #[test]
    fn serial_state_overrides() {
        let (net, a, s, t) = tiny();
        let ov = Overrides::from_effect(FaultEffect::ForceNode {
            node: s,
            value: Logic::H,
        });
        let mut st = SerialState::new(&net, ov.clone());
        assert!(st.is_input(s));
        assert_eq!(st.node_state(s), Logic::H);
        assert_eq!(st.overrides(), &ov);
        // Normal nodes behave normally.
        assert_eq!(st.node_state(a), Logic::H);
        st.set_node_state(s, Logic::L); // write lands in dense but the
        assert_eq!(st.node_state(s), Logic::H); // override still wins
        let _ = t;
    }
}
