//! The concurrent fault simulator — FMOSSIM's core algorithm (§4 of the
//! paper).
//!
//! One dense state holds the good circuit; each faulty circuit exists
//! only as divergence records (`<circuit, state>` per node) plus the
//! structural overrides implementing its fault. Every simulated phase:
//!
//! 1. applies the input changes to the good circuit (inputs broadcast
//!    to all circuits);
//! 2. settles the good circuit, and for every vicinity solved computes
//!    its *support* — members, gates of incident transistors, boundary
//!    inputs. Circuits with a record or fault attachment in the support
//!    are *triggered*: the good-circuit event may play out differently
//!    for them, so they receive private events. Before the good values
//!    are lost, the pre-change values of any changed node are copied
//!    into the triggered circuits' records (*old-value preservation*),
//!    keeping each faulty circuit's view consistent with its own
//!    history;
//! 3. settles each triggered faulty circuit, in circuit-id order, over
//!    an overlay view (records else good state). Writes maintain the
//!    records; writing the good circuit's value removes the record
//!    (convergence);
//! 4. at strobe phases compares observed outputs: any divergence
//!    detects the fault, which is dropped — its records are reclaimed
//!    and it is never simulated again.
//!
//! Triggering has one special case: an input change can matter to a
//! faulty circuit even when the good circuit shows no activity at all —
//! a channel transistor of the input that is open in the good circuit
//! may conduct in a faulty one (divergent or stuck gate). Step 1
//! therefore also scans the open channel transistors of each changed
//! input and triggers circuits diverging at their gates or attached at
//! their ends.

use crate::arena::{CircuitId, Csr, EventQueue, SimArena};
use crate::overlay::{FaultyView, Overrides};
use crate::packed::{PackedBucketView, PackedViewScratch};
use crate::pattern::{Pattern, Phase};
use crate::records::{StateListStore, StateLists};
use crate::report::{Detection, DetectionPolicy, PatternStats, RunReport};
use crate::tape::{GoodTape, PhaseTape};
use fmossim_faults::{Fault, FaultEffect, FaultId};
use fmossim_netlist::{Logic, Network, NodeId};
use fmossim_switch::{DenseState, Engine, EngineConfig, LocalityMode, PackedEngine, SwitchState};
use fmossim_telemetry::{Counter, Gauge, Registry};
use std::time::Instant;

/// Telemetry of one [`ConcurrentSim`] (`core.*` metrics); defaulted
/// handles are no-ops. The per-settle quantities accumulate into the
/// plain `local_*` fields — one plain integer add per circuit settle
/// instead of shared-atomic traffic — and [`CoreMetrics::flush`] folds
/// them into the handles once per pattern. The per-detection handles
/// (`detections`, `faults_dropped`, `faults_live`) stay direct: they
/// fire at most once per fault.
#[derive(Clone, Debug, Default)]
struct CoreMetrics {
    /// `core.events_scheduled` — private events delivered to faulty
    /// circuits (deduplicated seeds per circuit settle).
    events_scheduled: Counter,
    /// `core.circuit.settles` — faulty-circuit settles executed.
    circuit_settles: Counter,
    /// `core.faulty.groups` — vicinities solved inside faulty circuits.
    faulty_groups: Counter,
    /// `core.good.groups` — vicinities solved in the live good machine
    /// (zero under tape replay; see `core.tape.replayed_groups`).
    good_groups: Counter,
    /// `core.tape.replayed_groups` — recorded good-machine groups
    /// applied from a [`GoodTape`] instead of being re-solved.
    replayed_groups: Counter,
    /// `core.detections` — faults detected (once each).
    detections: Counter,
    /// `core.faults_dropped` — faulty circuits dropped (detection or
    /// external [`ConcurrentSim::drop_fault`]).
    faults_dropped: Counter,
    /// `core.faults_live` — live (undetected, undropped) faulty
    /// circuits at the last update; merged shard registries sum to the
    /// fleet-wide live count.
    faults_live: Gauge,
    /// `switch.scalar_fallbacks` — under packing, circuit settles routed
    /// through the scalar engine because their seed bucket held a single
    /// circuit. Same metric name as the packed engine's in-settle
    /// fallback counter: both mean "work packing could not share".
    scalar_fallbacks: Counter,
    /// `core.gated_skips` — live faulty circuits whose strobe
    /// observation was skipped by activity gating (their interaction
    /// cone saw no good-machine event since the previous strobe).
    gated_skips: Counter,
    local_events_scheduled: u64,
    local_circuit_settles: u64,
    local_faulty_groups: u64,
    local_good_groups: u64,
    local_replayed_groups: u64,
    local_scalar_fallbacks: u64,
    local_gated_skips: u64,
}

impl CoreMetrics {
    fn attach(registry: &Registry, gating: bool) -> Self {
        CoreMetrics {
            events_scheduled: registry.counter("core.events_scheduled"),
            circuit_settles: registry.counter("core.circuit.settles"),
            faulty_groups: registry.counter("core.faulty.groups"),
            good_groups: registry.counter("core.good.groups"),
            replayed_groups: registry.counter("core.tape.replayed_groups"),
            detections: registry.counter("core.detections"),
            faults_dropped: registry.counter("core.faults_dropped"),
            faults_live: registry.gauge("core.faults_live"),
            scalar_fallbacks: registry.counter("switch.scalar_fallbacks"),
            // Registered only when gating is on: an always-zero counter
            // would otherwise appear in every ungated run's snapshot
            // (and retroactively in every archived report fixture).
            gated_skips: if gating {
                registry.counter("core.gated_skips")
            } else {
                Counter::default()
            },
            ..CoreMetrics::default()
        }
    }

    fn flush(&mut self) {
        self.events_scheduled.add(self.local_events_scheduled);
        self.circuit_settles.add(self.local_circuit_settles);
        self.faulty_groups.add(self.local_faulty_groups);
        self.good_groups.add(self.local_good_groups);
        self.replayed_groups.add(self.local_replayed_groups);
        self.scalar_fallbacks.add(self.local_scalar_fallbacks);
        self.gated_skips.add(self.local_gated_skips);
        self.local_events_scheduled = 0;
        self.local_circuit_settles = 0;
        self.local_faulty_groups = 0;
        self.local_good_groups = 0;
        self.local_replayed_groups = 0;
        self.local_scalar_fallbacks = 0;
        self.local_gated_skips = 0;
    }
}

/// Computes the circuits triggered by one good-machine event (live or
/// replayed from a [`GoodTape`]) and queues their private events:
/// circuits with a divergence record or fault attachment anywhere in
/// the event's support are triggered, their records receive the
/// pre-change values of every changed node (old-value preservation),
/// and the group's members become pending private-event seeds.
///
/// Free function over the simulator's fields so both call sites can
/// borrow: the live path calls it from inside the engine's observer
/// closure (which already holds `engine` and `good` mutably), the
/// replay path from a plain method.
#[allow(clippy::too_many_arguments)]
fn trigger_group(
    records: &mut StateLists,
    attach: &Csr<u32>,
    queue: &mut EventQueue,
    dropped: &[bool],
    overrides: &[Overrides],
    triggered: &mut Vec<u32>,
    members: &[NodeId],
    support_rest: impl Iterator<Item = NodeId>,
    changed: &[(NodeId, Logic, Logic)],
) {
    triggered.clear();
    for s in members.iter().copied().chain(support_rest) {
        records.for_circuits_at(s, |c| {
            if !dropped[c as usize] {
                triggered.push(c);
            }
        });
        for &c in attach.row(s.index()) {
            if !dropped[c as usize] {
                triggered.push(c);
            }
        }
    }
    if triggered.is_empty() {
        return;
    }
    triggered.sort_unstable();
    triggered.dedup();
    for &c in triggered.iter() {
        // Old-value preservation: the triggered circuit must still see
        // the pre-change state until it re-settles. A circuit's forced
        // nodes are exempt — their values are fixed by the fault and
        // the records could never be cleaned up (the engine never
        // solves forced nodes).
        let forced = &overrides[c as usize];
        for &(node, old, _new) in changed {
            if forced.forced_value(node).is_some() {
                continue;
            }
            if records.get(node, c).is_none() {
                records.set(node, c, old);
            }
        }
        for &m in members {
            queue.schedule(CircuitId(c), m);
        }
    }
}

/// Configuration of the concurrent simulator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConcurrentConfig {
    /// Scheduler configuration (oscillation cap, locality mode).
    pub engine: EngineConfig,
    /// What counts as a detection.
    pub policy: DetectionPolicy,
    /// Drop faulty circuits once detected (the paper's behaviour).
    /// Disabling this is the `ablation_dropping` benchmark: every
    /// circuit is simulated for the whole sequence.
    pub drop_on_detect: bool,
    /// Divergence-record storage back-end.
    pub store: StateListStore,
    /// Bit-parallel (PPSFP-style) faulty-circuit settling: the
    /// triggered circuits of each phase are settled up to 64 at a time
    /// through one pass of bitwise plane operations
    /// ([`fmossim_switch::PackedEngine`]), each lane perturbed with its
    /// own seed set and lanes evicted to a scalar-equivalent re-solve
    /// whenever their vicinity structure diverges. Results are
    /// bit-identical to the scalar path; only
    /// the work counters (`faulty_groups`, `switch.*`) differ. Ignored
    /// (scalar path used) under [`LocalityMode::Static`], which the
    /// packed engine does not implement. Off by default and in
    /// [`ConcurrentConfig::paper`]: the paper predates bit-parallel
    /// fault packing.
    pub packing: bool,
    /// ERASER-style activity gating: each faulty circuit carries a
    /// static interaction-cone bitset
    /// ([`fmossim_netlist::influence::interaction_cone`] of its fault's
    /// effect terminals), the simulator accumulates every good-machine
    /// state change into an activity bitset, and at each strobe a live
    /// circuit whose cone intersects no activity since the previous
    /// strobe is skipped outright — its observable divergence provably
    /// cannot have changed. Gating also skips the open-channel
    /// input-change triggers for circuits that neither diverge at the
    /// transistor's gate nor force it, which is exact rather than
    /// conservative. Detections, drops and live counts are bit-identical
    /// either way; only work counters (`core.circuit.settles`,
    /// `core.faulty.groups`, `core.events_scheduled`) and the
    /// `core.gated_skips` telemetry differ. Off by default and in
    /// [`ConcurrentConfig::paper`].
    pub gating: bool,
}

impl ConcurrentConfig {
    /// The paper's configuration: dynamic locality, drop on detect,
    /// any-difference detection, sorted state lists.
    #[must_use]
    pub fn paper() -> Self {
        ConcurrentConfig {
            drop_on_detect: true,
            ..ConcurrentConfig::default()
        }
    }
}

/// A faulty circuit's complete carried state at a pattern boundary,
/// exported by [`ConcurrentSim::export_fault`] and re-imported by
/// [`ConcurrentSim::resume`].
///
/// Because the good machine is shared (and, under record/replay,
/// carried by the [`GoodTape`] / [`TapeRecorder`](crate::TapeRecorder)
/// pair), a faulty circuit's entire mid-sequence state reduces to its
/// divergence records plus a detected-once flag: private event queues
/// are empty between patterns (every settle drains them), and the
/// structural overrides are re-derivable from the fault itself. This
/// is what lets a batch-level driver re-partition surviving faults
/// into *different* shards between pattern batches without changing
/// any result bit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultSnapshot {
    /// The circuit's divergence records, `(node, state)` in ascending
    /// node order — exactly the nodes where the faulty circuit differs
    /// from the good one.
    pub records: Vec<(NodeId, Logic)>,
    /// True iff the fault has already been counted as detected
    /// (meaningful when simulating past detection with
    /// [`ConcurrentConfig::drop_on_detect`] off; a resumed circuit
    /// with this flag set is never counted again).
    pub detected: bool,
}

/// The concurrent switch-level fault simulator.
///
/// # Example
///
/// ```
/// use fmossim_netlist::{Network, Logic, Size, Drive, TransistorType};
/// use fmossim_faults::{Fault, FaultUniverse};
/// use fmossim_core::{ConcurrentSim, ConcurrentConfig, Pattern, Phase};
///
/// // An inverter whose output we observe.
/// let mut net = Network::new();
/// let vdd = net.add_input("Vdd", Logic::H);
/// let gnd = net.add_input("Gnd", Logic::L);
/// let a = net.add_input("A", Logic::L);
/// let out = net.add_storage("OUT", Size::S1);
/// net.add_transistor(TransistorType::P, Drive::D2, a, vdd, out);
/// net.add_transistor(TransistorType::N, Drive::D2, a, out, gnd);
///
/// let universe = FaultUniverse::stuck_nodes(&net);
/// let mut sim = ConcurrentSim::new(&net, universe.faults(), ConcurrentConfig::paper());
/// let patterns = vec![
///     Pattern::new(vec![Phase::strobe(vec![(a, Logic::L)])]),
///     Pattern::new(vec![Phase::strobe(vec![(a, Logic::H)])]),
/// ];
/// let report = sim.run(&patterns, &[out]);
/// assert_eq!(report.detected(), 2); // OUT stuck-at-0 and stuck-at-1
/// ```
pub struct ConcurrentSim<'n> {
    net: &'n Network,
    good: DenseState<'n>,
    engine: Engine,
    records: StateLists,
    /// Per circuit: the fault(s) it carries (singletons for the
    /// paper's experiments; multi-fault circuits supported).
    fault_sets: Vec<Vec<Fault>>,
    /// Per circuit id (0 unused): structural overrides.
    overrides: Vec<Overrides>,
    /// Per node (CSR row): circuits statically attached (fault
    /// footprint), ascending and unique within each row.
    attach: Csr<u32>,
    /// Per node (CSR row): circuits forcing this node, with the forced
    /// value (needed for strobe comparison — forced nodes carry no
    /// records).
    forced_at: Csr<(u32, Logic)>,
    /// Per circuit id: dropped after detection.
    dropped: Vec<bool>,
    /// Per circuit id: already counted as detected (relevant when
    /// `drop_on_detect` is off).
    detected_once: Vec<bool>,
    live: usize,
    /// Pending private events, drained in `(circuit, node)` order every
    /// settle step (see [`EventQueue`] for the drain-order invariant).
    queue: EventQueue,
    detections: Vec<Detection>,
    config: ConcurrentConfig,
    /// Scratch: circuits triggered by the current group.
    triggered: Vec<u32>,
    /// Scratch: the `(circuit, value)` entries strobed at one output —
    /// a snapshot so detections can drop circuits mid-iteration.
    strobe_scratch: Vec<(u32, Logic)>,
    /// The bit-parallel lane machinery; present iff
    /// [`ConcurrentConfig::packing`] is on (and locality is dynamic).
    packed: Option<Box<PackedLanes>>,
    /// Activity-gating state; present iff [`ConcurrentConfig::gating`].
    gating: Option<Box<GatingState>>,
    metrics: CoreMetrics,
}

/// Activity-gating state: per-circuit interaction cones over the node
/// set, plus the good-machine activity accumulated since the last
/// strobe. Both are `u64` bitsets over node indices.
///
/// The soundness invariant is that a circuit's divergence records (and
/// its pending private-event seeds) always stay inside its cone: the
/// cone is closed under channel adjacency and both gate interaction
/// directions, every vicinity that can trigger the circuit therefore
/// lies wholly inside it, and old-value preservation only writes
/// records at such vicinities' changed nodes. Hence if no good-machine
/// change touched the cone since the previous strobe, the circuit's
/// observable divergence — records at outputs, and its forced values
/// against the (equally unchanged) good values there — is exactly what
/// the previous strobe already adjudicated.
struct GatingState {
    /// Words per node bitset.
    stride: usize,
    /// `(n_sets + 1) × stride` words; circuit 0's slot is unused.
    cones: Vec<u64>,
    /// Nodes whose good state changed (or whose inputs were assigned)
    /// since the last strobe. Starts all-ones so the first strobe — and
    /// the first strobe after a [`ConcurrentSim::resume`] — checks
    /// every circuit.
    events: Vec<u64>,
    /// Scratch: per-circuit quiet flag for the current strobe.
    quiet: Vec<bool>,
}

impl GatingState {
    fn build(net: &Network, fault_sets: &[Vec<Fault>]) -> Box<GatingState> {
        let stride = net.num_nodes().div_ceil(64);
        let n_sets = fault_sets.len();
        let mut cones = vec![0u64; (n_sets + 1) * stride];
        let mut seeds = Vec::new();
        for (k, set) in fault_sets.iter().enumerate() {
            seeds.clear();
            for fault in set {
                match fault.effect() {
                    FaultEffect::ForceNode { node, .. } => seeds.push(node),
                    FaultEffect::ForceTransistor { t, .. } => {
                        let tr = net.transistor(t);
                        seeds.push(tr.source);
                        seeds.push(tr.drain);
                    }
                }
            }
            let cone = fmossim_netlist::influence::interaction_cone(net, &seeds);
            let slot = &mut cones[(k + 1) * stride..(k + 2) * stride];
            for (i, &inc) in cone.iter().enumerate() {
                if inc {
                    slot[i / 64] |= 1u64 << (i % 64);
                }
            }
        }
        Box::new(GatingState {
            stride,
            cones,
            events: vec![u64::MAX; stride],
            quiet: vec![false; n_sets + 1],
        })
    }

    /// Marks good-machine activity at `node`.
    #[inline]
    fn mark(&mut self, node: NodeId) {
        self.events[node.index() / 64] |= 1u64 << (node.index() % 64);
    }

    /// True iff circuit `circ`'s cone saw no activity since the last
    /// [`GatingState::clear`].
    fn is_quiet(&self, circ: u32) -> bool {
        let slot = &self.cones[circ as usize * self.stride..(circ as usize + 1) * self.stride];
        slot.iter()
            .zip(&self.events)
            .all(|(&cone, &ev)| cone & ev == 0)
    }

    /// Resets the activity accumulator (at the end of each strobe).
    fn clear(&mut self) {
        self.events.fill(0);
    }
}

/// One triggered circuit's drained seed run: a range into the sorted
/// event buffer of the current settle step (the run's nodes are
/// `events[start..end]`, sorted and unique).
#[derive(Clone, Copy)]
struct SeedRun {
    circ: u32,
    start: u32,
    end: u32,
}

impl SeedRun {
    #[inline]
    fn range(self) -> std::ops::Range<usize> {
        self.start as usize..self.end as usize
    }
}

/// The packed settling machinery: one engine plus the reusable
/// gather/scatter scratch behind [`PackedBucketView`]. Boxed so the
/// scalar configuration pays one pointer.
struct PackedLanes {
    engine: PackedEngine,
    scratch: PackedViewScratch,
    /// Scratch: the triggered circuits of the current phase as seed
    /// runs into the drained event buffer, chunked into lanes.
    batch: Vec<SeedRun>,
    /// Scratch: the seed-sharing circuits of the batch (packed lanes).
    shared: Vec<SeedRun>,
    /// Scratch: the circuits with fully private seed sets (scalar).
    solo: Vec<SeedRun>,
    /// Scratch: per-node triggered-circuit count, epoch-stamped.
    seed_count: Vec<u32>,
    seed_epoch: Vec<u32>,
    seed_gen: u32,
    /// Scratch: the current chunk's lane → circuit map.
    lane_circs: Vec<u32>,
}

impl<'n> ConcurrentSim<'n> {
    /// Creates a simulator for single faults on `net`. Fault `k`
    /// becomes circuit `k + 1`; all circuits start at the reset state
    /// (inputs at declared defaults, storage at `X`) with their faults
    /// active.
    #[must_use]
    pub fn new(net: &'n Network, faults: &[Fault], config: ConcurrentConfig) -> Self {
        ConcurrentSim::new_multi(net, faults.iter().map(|&f| vec![f]).collect(), config)
    }

    /// [`ConcurrentSim::new`] with a recycled [`Engine`] — the
    /// allocation-free construction path for drivers that rebuild
    /// simulators over the same network (the engine is
    /// [`recycle`](Engine::recycle)d, so any prior state is fine).
    /// Reclaim the engine afterwards with
    /// [`ConcurrentSim::take_engine`].
    #[must_use]
    pub fn new_with_engine(
        net: &'n Network,
        faults: &[Fault],
        config: ConcurrentConfig,
        engine: Engine,
    ) -> Self {
        ConcurrentSim::new_multi_with_engine(
            net,
            faults.iter().map(|&f| vec![f]).collect(),
            config,
            engine,
        )
    }

    /// Creates a simulator where each circuit carries a *set* of
    /// simultaneous faults — double-fault and fault-masking studies.
    /// Set `k` becomes circuit `k + 1`; its [`Detection`] reports
    /// `FaultId(k)`.
    #[must_use]
    pub fn new_multi(
        net: &'n Network,
        fault_sets: Vec<Vec<Fault>>,
        config: ConcurrentConfig,
    ) -> Self {
        ConcurrentSim::new_multi_with_engine(
            net,
            fault_sets,
            config,
            Engine::with_config(net, config.engine),
        )
    }

    /// [`ConcurrentSim::new_multi`] with a recycled [`Engine`] (see
    /// [`ConcurrentSim::new_with_engine`]).
    #[must_use]
    pub fn new_multi_with_engine(
        net: &'n Network,
        fault_sets: Vec<Vec<Fault>>,
        config: ConcurrentConfig,
        engine: Engine,
    ) -> Self {
        ConcurrentSim::new_multi_in(net, fault_sets, config, SimArena::with_engine(engine))
    }

    /// [`ConcurrentSim::new`] constructing *in* a recycled [`SimArena`]
    /// — the full allocation-reuse path: the engine, record store,
    /// structural tables, event queue and every scratch buffer are
    /// recycled in place. Reclaim the bundle afterwards with
    /// [`ConcurrentSim::take_arena`].
    #[must_use]
    pub fn new_in(
        net: &'n Network,
        faults: &[Fault],
        config: ConcurrentConfig,
        arena: SimArena,
    ) -> Self {
        ConcurrentSim::new_multi_in(
            net,
            faults.iter().map(|&f| vec![f]).collect(),
            config,
            arena,
        )
    }

    /// [`ConcurrentSim::new_multi`] constructing *in* a recycled
    /// [`SimArena`] (see [`ConcurrentSim::new_in`]). Every constructor
    /// funnels here; a fresh arena behaves identically to a recycled
    /// one, so arena reuse cannot change any result bit.
    #[must_use]
    pub fn new_multi_in(
        net: &'n Network,
        fault_sets: Vec<Vec<Fault>>,
        config: ConcurrentConfig,
        arena: SimArena,
    ) -> Self {
        let SimArena {
            mut engine,
            mut records,
            mut overrides,
            mut attach,
            mut forced_at,
            mut dropped,
            mut detected_once,
            mut queue,
            mut triggered,
            mut strobe_scratch,
        } = arena;
        let good = DenseState::new(net);
        engine.recycle(net, config.engine);
        engine.perturb_all_storage(&good);
        let packed =
            (config.packing && config.engine.locality == LocalityMode::Dynamic).then(|| {
                Box::new(PackedLanes {
                    engine: PackedEngine::with_config(net, config.engine),
                    scratch: PackedViewScratch::new(net.num_nodes()),
                    batch: Vec::new(),
                    shared: Vec::new(),
                    solo: Vec::new(),
                    seed_count: vec![0; net.num_nodes()],
                    seed_epoch: vec![0; net.num_nodes()],
                    seed_gen: 0,
                    lane_circs: Vec::new(),
                })
            });
        let n_sets = fault_sets.len();
        let gating = config.gating.then(|| GatingState::build(net, &fault_sets));
        records.recycle(net.num_nodes(), n_sets, config.store);
        overrides.clear();
        overrides.resize(n_sets + 1, Overrides::default());
        dropped.clear();
        dropped.resize(n_sets + 1, false);
        detected_once.clear();
        detected_once.resize(n_sets + 1, false);
        queue.clear();
        triggered.clear();
        strobe_scratch.clear();
        // The structural tables, flattened: (node, entry) pairs sorted
        // by node, then CSR-compacted. `attach` rows must be ascending
        // and unique; `forced_at` rows keep their per-circuit push
        // order (circuit-ascending by construction of the loop).
        let mut attach_pairs: Vec<(u32, u32)> = Vec::new();
        let mut forced_pairs: Vec<(u32, (u32, Logic))> = Vec::new();
        let mut seeds = Vec::new();
        for (k, set) in fault_sets.iter().enumerate() {
            let circ = u32::try_from(k + 1).expect("too many faults");
            overrides[circ as usize] = Overrides::from_effects(set.iter().map(Fault::effect));
            seeds.clear();
            for fault in set {
                if let FaultEffect::ForceNode { node, value } = fault.effect() {
                    forced_pairs.push((
                        u32::try_from(node.index()).expect("node fits u32"),
                        (circ, value),
                    ));
                }
                for n in fault.footprint(net) {
                    attach_pairs.push((u32::try_from(n.index()).expect("node fits u32"), circ));
                }
                seeds.extend(fault.initial_seeds(net));
            }
            for &s in &seeds {
                queue.schedule(CircuitId(circ), s);
            }
        }
        attach_pairs.sort_unstable();
        attach_pairs.dedup();
        attach.rebuild(net.num_nodes(), &attach_pairs);
        // Stable by node: entries at one node stay in push order.
        forced_pairs.sort_by_key(|&(n, _)| n);
        forced_at.rebuild(net.num_nodes(), &forced_pairs);
        ConcurrentSim {
            net,
            good,
            engine,
            records,
            fault_sets,
            overrides,
            attach,
            forced_at,
            dropped,
            detected_once,
            live: n_sets,
            queue,
            detections: Vec::new(),
            config,
            triggered,
            strobe_scratch,
            packed,
            gating,
            metrics: CoreMetrics::default(),
        }
    }

    /// Reconstructs a mid-sequence simulator from a good-machine state
    /// snapshot and per-fault [`FaultSnapshot`]s — the batch-continuable
    /// replay entry point that shard re-planners use between pattern
    /// batches.
    ///
    /// `good` must be the good machine's state at the batch boundary
    /// (for replay: the [`TapeRecorder`](crate::TapeRecorder)'s state
    /// *before* recording the next batch), and `snapshots[k]` the state
    /// [`ConcurrentSim::export_fault`] returned for `faults[k]` at that
    /// same boundary. Unlike [`ConcurrentSim::new`], no initial fault
    /// seeds are queued and no reset perturbation is pending: the
    /// circuits were already seeded when their original simulator
    /// started, and re-seeding here would replay start-of-sequence
    /// transients into the middle of it.
    ///
    /// Continuing such a simulator with
    /// [`ConcurrentSim::run_replayed_from`] over the next batch's tape
    /// is bit-identical to having simulated the whole sequence in one
    /// simulator — regardless of how faults are re-partitioned across
    /// simulators at each boundary (`tests/adaptive_equivalence.rs`
    /// asserts this workspace-wide).
    ///
    /// # Panics
    ///
    /// Panics if `snapshots` and `faults` have different lengths.
    #[must_use]
    pub fn resume(
        net: &'n Network,
        faults: &[Fault],
        config: ConcurrentConfig,
        good: &DenseState<'n>,
        snapshots: &[FaultSnapshot],
    ) -> Self {
        ConcurrentSim::resume_with_engine(
            net,
            faults,
            config,
            good,
            snapshots,
            Engine::with_config(net, config.engine),
        )
    }

    /// [`ConcurrentSim::resume`] with a recycled [`Engine`] (see
    /// [`ConcurrentSim::new_with_engine`]).
    ///
    /// # Panics
    ///
    /// Panics if `snapshots` and `faults` have different lengths.
    #[must_use]
    pub fn resume_with_engine(
        net: &'n Network,
        faults: &[Fault],
        config: ConcurrentConfig,
        good: &DenseState<'n>,
        snapshots: &[FaultSnapshot],
        engine: Engine,
    ) -> Self {
        ConcurrentSim::resume_in(
            net,
            faults,
            config,
            good,
            snapshots,
            SimArena::with_engine(engine),
        )
    }

    /// [`ConcurrentSim::resume`] constructing *in* a recycled
    /// [`SimArena`] (see [`ConcurrentSim::new_in`]) — what a batch
    /// driver's per-shard arena pool calls at every re-plan boundary.
    ///
    /// # Panics
    ///
    /// Panics if `snapshots` and `faults` have different lengths.
    #[must_use]
    pub fn resume_in(
        net: &'n Network,
        faults: &[Fault],
        config: ConcurrentConfig,
        good: &DenseState<'n>,
        snapshots: &[FaultSnapshot],
        arena: SimArena,
    ) -> Self {
        assert_eq!(
            faults.len(),
            snapshots.len(),
            "one snapshot per resumed fault"
        );
        let mut sim = ConcurrentSim::new_in(net, faults, config, arena);
        // Replace the reset-state good machine with the boundary state
        // and discard the constructor's pending perturbations and
        // initial fault seeds: the tape covers the former, the original
        // batch-0 run already consumed the latter.
        sim.good = good.clone();
        sim.engine.clear_pending();
        sim.queue.clear();
        for (k, snap) in snapshots.iter().enumerate() {
            let circ = u32::try_from(k + 1).expect("fault id fits");
            for &(node, v) in &snap.records {
                sim.records.set(node, circ, v);
            }
            sim.detected_once[circ as usize] = snap.detected;
        }
        sim
    }

    /// Consumes the simulator and returns its [`Engine`] for reuse via
    /// [`ConcurrentSim::new_with_engine`] /
    /// [`ConcurrentSim::resume_with_engine`] — together they let a
    /// batch driver keep one engine's buffers (solver scratch, queues,
    /// round stamps) alive across per-batch simulator rebuilds instead
    /// of reallocating them every time.
    #[must_use]
    pub fn take_engine(self) -> Engine {
        self.engine
    }

    /// Consumes the simulator and returns its whole [`SimArena`] for
    /// reuse via [`ConcurrentSim::new_in`] /
    /// [`ConcurrentSim::resume_in`] — the bundle generalises
    /// [`ConcurrentSim::take_engine`] to every owned hot-path buffer
    /// (record store, structural tables, event queue, scratch), so a
    /// batch driver's rebuild loop stops paying per-rebuild allocator
    /// traffic for any of them.
    #[must_use]
    pub fn take_arena(self) -> SimArena {
        SimArena {
            engine: self.engine,
            records: self.records,
            overrides: self.overrides,
            attach: self.attach,
            forced_at: self.forced_at,
            dropped: self.dropped,
            detected_once: self.detected_once,
            queue: self.queue,
            triggered: self.triggered,
            strobe_scratch: self.strobe_scratch,
        }
    }

    /// Exports the carried state of fault `f` at a pattern boundary —
    /// the other half of [`ConcurrentSim::resume`]. Returns `None` for
    /// a dropped circuit (nothing survives to carry) or an
    /// out-of-range id.
    #[must_use]
    pub fn export_fault(&self, f: FaultId) -> Option<FaultSnapshot> {
        let circ = f.index() + 1;
        if circ > self.fault_sets.len() || self.dropped[circ] {
            return None;
        }
        let circ = u32::try_from(circ).expect("fault id fits");
        let records = self
            .records
            .nodes_of(circ)
            .into_iter()
            .map(|n| (n, self.records.get(n, circ).expect("node has a record")))
            .collect();
        Some(FaultSnapshot {
            records,
            detected: self.detected_once[circ as usize],
        })
    }

    /// Publishes this simulator's activity into `registry`: the
    /// `core.*` metrics (events scheduled, circuit settles, detections,
    /// live faults, tape replay hits) plus the owned engine's
    /// `switch.*` metrics. Until attached (or when `registry` is null)
    /// the instrumentation is a no-op. Fault-parallel drivers attach a
    /// per-shard [`Registry::fork`] and merge at report time.
    ///
    /// Per-settle activity is accumulated locally and folded into the
    /// registry at every pattern boundary (both live and replayed
    /// paths); callers stepping individual phases via
    /// [`ConcurrentSim::step_phase`] call
    /// [`ConcurrentSim::flush_metrics`] before reading the registry.
    pub fn attach_metrics(&mut self, registry: &Registry) {
        self.metrics = CoreMetrics::attach(registry, self.config.gating);
        self.metrics.faults_live.set(self.live as f64);
        self.engine.attach_metrics(registry);
        if let Some(packed) = &mut self.packed {
            packed.engine.attach_metrics(registry);
        }
    }

    /// Folds locally accumulated settle activity (this simulator's and
    /// its engine's) into the attached registry. Runs automatically at
    /// every pattern boundary; needed explicitly only when stepping
    /// phases by hand.
    pub fn flush_metrics(&mut self) {
        self.metrics.flush();
        self.engine.flush_metrics();
        if let Some(packed) = &mut self.packed {
            packed.engine.flush_metrics();
        }
    }

    /// The fault sets being simulated, in circuit order (singleton
    /// sets when constructed via [`ConcurrentSim::new`]).
    #[must_use]
    pub fn fault_sets(&self) -> &[Vec<Fault>] {
        &self.fault_sets
    }

    /// Number of faulty circuits not yet detected-and-dropped.
    #[must_use]
    pub fn live(&self) -> usize {
        self.live
    }

    /// The good circuit's current state of node `n`.
    #[must_use]
    pub fn good_state(&self, n: NodeId) -> Logic {
        self.good.node_state(n)
    }

    /// The current state of node `n` in the faulty circuit of fault
    /// `f` (forced value, else divergence record, else good state).
    #[must_use]
    pub fn fault_state(&self, f: FaultId, n: NodeId) -> Logic {
        let circ = u32::try_from(f.index() + 1).expect("fault id in range");
        if let Some(v) = self.overrides[circ as usize].forced_value(n) {
            return v;
        }
        self.records
            .get(n, circ)
            .unwrap_or_else(|| self.good.node_state(n))
    }

    /// Drops the faulty circuit of `f` without recording a detection,
    /// reclaiming its records — the external counterpart of the
    /// drop-on-detect rule. A sharded driver (or any coordinator that
    /// learns about a fault from outside this simulator, e.g. a
    /// cross-shard equivalence oracle) uses this to stop paying for a
    /// circuit it no longer needs. Returns `false` if the fault is out
    /// of range or already dropped.
    pub fn drop_fault(&mut self, f: FaultId) -> bool {
        let circ = f.index() + 1;
        if circ > self.fault_sets.len() || self.dropped[circ] {
            return false;
        }
        self.drop_circuit(u32::try_from(circ).expect("circuit id fits"));
        true
    }

    /// All detections so far, in occurrence order.
    #[must_use]
    pub fn detections(&self) -> &[Detection] {
        &self.detections
    }

    /// Total number of live divergence records (a measure of how
    /// different the faulty circuits currently are from the good one).
    #[must_use]
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// Every `(fault, output_index, good, faulty)` divergence currently
    /// visible on `outputs`, across all live circuits, in ascending
    /// circuit order per output. This is the raw material of strobe
    /// comparison, exposed for harnesses that need more than the
    /// built-in detection logic — e.g. building a fault dictionary.
    #[must_use]
    pub fn output_divergences(&self, outputs: &[NodeId]) -> Vec<(FaultId, usize, Logic, Logic)> {
        let mut v = Vec::new();
        for (oi, &out) in outputs.iter().enumerate() {
            let goodv = self.good.node_state(out);
            for (circ, val) in self.records.circuits_at(out) {
                if !self.dropped[circ as usize] {
                    v.push((FaultId(circ - 1), oi, goodv, val));
                }
            }
            for &(circ, val) in self.forced_at.row(out.index()) {
                if !self.dropped[circ as usize] && val != goodv {
                    v.push((FaultId(circ - 1), oi, goodv, val));
                }
            }
        }
        v
    }

    /// Runs a pattern sequence, observing `outputs` at every strobe
    /// phase. Returns per-pattern statistics and all detections made
    /// during this run. May be called repeatedly to continue a
    /// simulation with further sequences.
    pub fn run(&mut self, patterns: &[Pattern], outputs: &[NodeId]) -> RunReport {
        let t0 = Instant::now();
        let detections_before = self.detections.len();
        let mut report = RunReport {
            num_faults: self.fault_sets.len(),
            ..RunReport::default()
        };
        for (pi, pattern) in patterns.iter().enumerate() {
            report
                .patterns
                .push(self.step_pattern(pattern, outputs, pi));
        }
        report.detections = self.detections[detections_before..].to_vec();
        report.total_seconds = t0.elapsed().as_secs_f64();
        report
    }

    /// Simulates one pattern (all its phases) and returns its stats.
    pub fn step_pattern(
        &mut self,
        pattern: &Pattern,
        outputs: &[NodeId],
        pattern_idx: usize,
    ) -> PatternStats {
        let t0 = Instant::now();
        let mut stats = PatternStats {
            live_before: self.live,
            ..PatternStats::default()
        };
        for (phi, phase) in pattern.phases.iter().enumerate() {
            self.step_phase(phase, outputs, pattern_idx, phi, &mut stats);
        }
        self.flush_metrics();
        stats.seconds = t0.elapsed().as_secs_f64();
        stats
    }

    /// Simulates one phase: input application, good settle with
    /// triggering, faulty settles, optional strobe. Exposed so that
    /// harnesses (and the equivalence tests) can inspect circuit states
    /// between phases; most callers want [`ConcurrentSim::run`].
    pub fn step_phase(
        &mut self,
        phase: &Phase,
        outputs: &[NodeId],
        pattern_idx: usize,
        phase_idx: usize,
        stats: &mut PatternStats,
    ) {
        // 1. Input changes (with the open-channel trigger special case).
        self.apply_phase_inputs(phase, true);

        // 2. Good-circuit settle with support-based triggering.
        {
            let net = self.net;
            let ConcurrentSim {
                good,
                engine,
                records,
                attach,
                queue,
                dropped,
                triggered,
                overrides,
                gating,
                ..
            } = self;
            let rep = engine.settle_observed(good, |g| {
                if let Some(gate) = gating.as_deref_mut() {
                    for &(node, _, _) in g.changed {
                        gate.mark(node);
                    }
                }
                trigger_group(
                    records,
                    attach,
                    queue,
                    dropped,
                    overrides,
                    triggered,
                    g.members,
                    g.incident_gates(net)
                        .chain(g.boundary_inputs.iter().copied()),
                    g.changed,
                );
            });
            stats.good_groups += rep.groups_solved;
            stats.damped |= rep.oscillation_damped;
            self.metrics.local_good_groups += rep.groups_solved as u64;
        }

        // 3. Faulty circuits, in circuit-id order.
        self.settle_triggered(stats);

        // 4. Strobe: compare observed outputs, detect and drop.
        if phase.strobe {
            self.observe(outputs, pattern_idx, phase_idx, stats);
        }
    }

    /// Settles every triggered faulty circuit — step 3 of the phase
    /// loop, shared between the live and replayed good-machine paths.
    ///
    /// The scalar path works in circuit-id order; the packed path
    /// regroups circuits by identical seed sets first. Circuits never
    /// interact during this step (each settles its own records against
    /// the read-only good state), so the order does not affect any
    /// result bit.
    fn settle_triggered(&mut self, stats: &mut PatternStats) {
        if self.packed.is_some() {
            self.settle_triggered_packed(stats);
            return;
        }
        // Drain the flat queue: one sort yields ascending circuit runs
        // with sorted, deduplicated seed nodes — the same schedule the
        // per-circuit map produced, with no per-circuit allocation.
        // Dropped circuits are skipped here (dropping removes records,
        // not queue entries).
        let events = self.queue.take_sorted();
        let mut i = 0;
        while i < events.len() {
            let circ = events[i].0;
            let mut j = i + 1;
            while j < events.len() && events[j].0 == circ {
                j += 1;
            }
            if !self.dropped[circ.index()] {
                self.settle_circuit_scalar(circ.get(), &events[i..j], stats, false);
            }
            i = j;
        }
        self.queue.restore(events);
    }

    /// The packed lane scheduler: drains the pending private events,
    /// splits the triggered circuits by seed sharing, and settles the
    /// sharing ones in chunks of up to 64 lanes through the packed
    /// engine, each lane perturbed with its own (sorted, deduplicated)
    /// seed set. Lanes are independent inside the engine — pending,
    /// solved and damping masks are all per-lane — so a lane's
    /// round-by-round schedule is exactly its scalar schedule no matter
    /// what the other lanes do; lanes whose vicinity structure diverges
    /// mid-solve are evicted to an immediate re-solve.
    ///
    /// Bit-sharing happens wherever two lanes' propagation fronts meet
    /// at the same group in the same round, and the first round is the
    /// predictor: circuits woken at a common node (a shared bitline, a
    /// bus) start aligned, while a circuit whose every seed is private
    /// to it — no other triggered circuit was woken there — propagates
    /// in its own region and would only pay the packed machinery's
    /// per-chunk overhead. The split routes the latter (and any phase
    /// that triggers a single circuit) through the scalar engine,
    /// counted as `switch.scalar_fallbacks`. Both paths are
    /// bit-identical, so the split is pure scheduling.
    fn settle_triggered_packed(&mut self, stats: &mut PatternStats) {
        // One sorted drain of the flat queue yields the batch directly:
        // ascending circuit runs (the lane→circuit map the packed view
        // binary-searches) whose seed slices are already sorted and
        // deduplicated in the event buffer — no per-circuit Vec.
        let events = self.queue.take_sorted();
        let lanes = self.packed.as_mut().expect("packed path active");
        let mut batch = std::mem::take(&mut lanes.batch);
        let mut shared = std::mem::take(&mut lanes.shared);
        let mut solo = std::mem::take(&mut lanes.solo);
        batch.clear();
        shared.clear();
        solo.clear();
        let mut i = 0;
        while i < events.len() {
            let circ = events[i].0;
            let mut j = i + 1;
            while j < events.len() && events[j].0 == circ {
                j += 1;
            }
            if !self.dropped[circ.index()] {
                batch.push(SeedRun {
                    circ: circ.get(),
                    start: u32::try_from(i).expect("event index fits u32"),
                    end: u32::try_from(j).expect("event index fits u32"),
                });
            }
            i = j;
        }
        {
            let lanes = self.packed.as_mut().expect("packed path active");
            lanes.seed_gen = lanes.seed_gen.wrapping_add(1);
            if lanes.seed_gen == 0 {
                lanes.seed_epoch.fill(0);
                lanes.seed_gen = 1;
            }
            for run in &batch {
                for &(_, s) in &events[run.range()] {
                    let i = s.index();
                    if lanes.seed_epoch[i] != lanes.seed_gen {
                        lanes.seed_epoch[i] = lanes.seed_gen;
                        lanes.seed_count[i] = 0;
                    }
                    lanes.seed_count[i] += 1;
                }
            }
            for run in batch.drain(..) {
                let shares = events[run.range()]
                    .iter()
                    .any(|&(_, s)| lanes.seed_count[s.index()] >= 2);
                if shares {
                    shared.push(run);
                } else {
                    solo.push(run);
                }
            }
        }
        for start in (0..shared.len()).step_by(64) {
            let chunk = &shared[start..(start + 64).min(shared.len())];
            if chunk.len() == 1 {
                let run = chunk[0];
                self.settle_circuit_scalar(run.circ, &events[run.range()], stats, true);
            } else {
                self.settle_chunk_packed(&events, chunk, stats);
            }
        }
        for &run in &solo {
            self.settle_circuit_scalar(run.circ, &events[run.range()], stats, true);
        }
        let lanes = self.packed.as_mut().expect("packed path active");
        lanes.batch = batch;
        lanes.shared = shared;
        lanes.solo = solo;
        self.queue.restore(events);
    }

    /// Settles one faulty circuit through the scalar engine (the
    /// original concurrent path; under packing, the singleton-bucket
    /// fallback).
    fn settle_circuit_scalar(
        &mut self,
        circ: u32,
        seeds: &[(CircuitId, NodeId)],
        stats: &mut PatternStats,
        fallback: bool,
    ) {
        let net = self.net;
        let ConcurrentSim {
            good,
            engine,
            records,
            overrides,
            metrics,
            ..
        } = self;
        metrics.local_events_scheduled += seeds.len() as u64;
        let rep = {
            let mut view =
                FaultyView::new(net, good.states(), records, circ, &overrides[circ as usize]);
            for &(_, s) in seeds {
                engine.perturb(s);
            }
            engine.settle(&mut view)
        };
        // Convergence sweep: when the *good* circuit moved to the
        // value this circuit already held, the settle saw no
        // change and left the record in place — now equal to the
        // good state. Seeds cover every node the good circuit
        // changed (that is what triggered us), so sweeping them
        // restores the records-iff-divergent invariant.
        for &(_, s) in seeds {
            if records.get(s, circ) == Some(good.node_state(s)) {
                records.remove(s, circ);
            }
        }
        stats.faulty_groups += rep.groups_solved;
        stats.circuit_settles += 1;
        stats.damped |= rep.oscillation_damped;
        metrics.local_faulty_groups += rep.groups_solved as u64;
        metrics.local_circuit_settles += 1;
        if fallback {
            metrics.local_scalar_fallbacks += rep.groups_solved as u64;
        }
    }

    /// Settles a chunk of 2–64 circuits through the packed engine —
    /// lane `i` perturbed with `chunk[i]`'s seeds — then scatters the
    /// dirty lanes back into the record lists and runs the per-lane
    /// convergence sweep.
    fn settle_chunk_packed(
        &mut self,
        events: &[(CircuitId, NodeId)],
        chunk: &[SeedRun],
        stats: &mut PatternStats,
    ) {
        let net = self.net;
        let ConcurrentSim {
            good,
            records,
            overrides,
            packed,
            metrics,
            ..
        } = self;
        let PackedLanes {
            engine,
            scratch,
            lane_circs,
            ..
        } = &mut **packed.as_mut().expect("packed path active");
        lane_circs.clear();
        lane_circs.extend(chunk.iter().map(|run| run.circ));
        let rep = {
            let mut view =
                PackedBucketView::new(net, good.states(), records, lane_circs, overrides, scratch);
            for (lane, run) in chunk.iter().enumerate() {
                let seeds = &events[run.range()];
                metrics.local_events_scheduled += seeds.len() as u64;
                let bit = 1u64 << lane;
                for &(_, s) in seeds {
                    engine.perturb(s, bit);
                }
            }
            engine.settle(&mut view)
        };
        scratch.scatter(good.states(), records, lane_circs);
        // Per-lane convergence sweep, as in the scalar path.
        for run in chunk {
            for &(_, s) in &events[run.range()] {
                if records.get(s, run.circ) == Some(good.node_state(s)) {
                    records.remove(s, run.circ);
                }
            }
        }
        // `faulty_groups` counts packed solves here (each covering up
        // to 64 circuits), so it is not comparable with the scalar
        // path's per-circuit count; `circuit_settles` stays per
        // circuit. Detections and states are bit-identical either way.
        stats.faulty_groups += rep.groups_solved;
        stats.circuit_settles += chunk.len();
        stats.damped |= rep.oscillation_damped();
        metrics.local_faulty_groups += rep.groups_solved as u64;
        metrics.local_circuit_settles += chunk.len() as u64;
    }

    /// Runs a pattern sequence against a recorded good-machine
    /// [`GoodTape`] instead of re-settling the good circuit — the
    /// replay half of the record/replay split. Triggered faults,
    /// old-value preservation and private events are re-derived from
    /// the tape's solved groups, so the result (detections, drops,
    /// per-pattern counters) is bit-identical to [`ConcurrentSim::run`]
    /// over the same patterns; only the good-machine solver work is
    /// saved.
    ///
    /// The tape must have been recorded over the same network and the
    /// same patterns, starting from the state this simulator's good
    /// machine is currently in: for a fresh simulator, a tape recorded
    /// from reset ([`GoodTape::record`]); when simulating a long
    /// sequence in batches, the `k`-th call must replay the `k`-th
    /// batch of a single [`TapeRecorder`](crate::TapeRecorder).
    ///
    /// # Panics
    ///
    /// Panics if the tape's shape (network node count, pattern and
    /// phase counts) does not match `patterns`.
    pub fn run_replayed(
        &mut self,
        patterns: &[Pattern],
        outputs: &[NodeId],
        tape: &GoodTape,
    ) -> RunReport {
        self.run_replayed_from(patterns, outputs, tape, 0)
    }

    /// [`ConcurrentSim::run_replayed`] for one *batch* of a longer
    /// sequence: `patterns` is the batch, `tape` its recorded
    /// good-machine activity, and `first_pattern` the batch's offset in
    /// the full sequence — detections carry global pattern indices, so
    /// batch reports merge into whole-sequence reports without
    /// relabelling. The returned per-pattern statistics remain local to
    /// the batch (index 0 is the batch's first pattern); batch drivers
    /// concatenate them in batch order.
    ///
    /// The simulator must be at the batch's starting state: a fresh
    /// simulator for the first batch, or one rebuilt at the boundary
    /// via [`ConcurrentSim::resume`] (equivalently, the same simulator
    /// continued across batches), with the tape recorded by a single
    /// [`TapeRecorder`](crate::TapeRecorder) batch by batch.
    ///
    /// # Panics
    ///
    /// Panics if the tape's shape (network node count, pattern and
    /// phase counts) does not match `patterns`.
    pub fn run_replayed_from(
        &mut self,
        patterns: &[Pattern],
        outputs: &[NodeId],
        tape: &GoodTape,
        first_pattern: usize,
    ) -> RunReport {
        assert!(
            tape.matches(self.net.num_nodes(), patterns),
            "good tape does not match the pattern sequence \
             (tape: {} nodes, {} patterns; run: {} nodes, {} patterns)",
            tape.num_nodes(),
            tape.num_patterns(),
            self.net.num_nodes(),
            patterns.len(),
        );
        let t0 = Instant::now();
        let detections_before = self.detections.len();
        let mut report = RunReport {
            num_faults: self.fault_sets.len(),
            ..RunReport::default()
        };
        for (pi, pattern) in patterns.iter().enumerate() {
            report.patterns.push(self.step_pattern_replayed(
                pattern,
                tape.pattern(pi),
                outputs,
                first_pattern + pi,
            ));
        }
        report.detections = self.detections[detections_before..].to_vec();
        report.total_seconds = t0.elapsed().as_secs_f64();
        report
    }

    /// Simulates one pattern against its recorded phase tapes
    /// (the replay counterpart of [`ConcurrentSim::step_pattern`]).
    ///
    /// # Panics
    ///
    /// Panics if `phase_tapes` has a different phase count than
    /// `pattern`.
    pub fn step_pattern_replayed(
        &mut self,
        pattern: &Pattern,
        phase_tapes: &[PhaseTape],
        outputs: &[NodeId],
        pattern_idx: usize,
    ) -> PatternStats {
        assert_eq!(
            pattern.phases.len(),
            phase_tapes.len(),
            "phase tape count mismatch"
        );
        // Pending good-machine perturbations (the constructor's
        // all-storage seeding, on a fresh simulator) are covered by the
        // tape: discard them so they cannot leak into the first faulty
        // settle. Between replayed patterns the queue is always empty,
        // so this is free thereafter.
        self.engine.clear_pending();
        let t0 = Instant::now();
        let mut stats = PatternStats {
            live_before: self.live,
            ..PatternStats::default()
        };
        for (phi, (phase, ptape)) in pattern.phases.iter().zip(phase_tapes).enumerate() {
            self.step_phase_replayed(phase, ptape, outputs, pattern_idx, phi, &mut stats);
        }
        self.flush_metrics();
        stats.seconds = t0.elapsed().as_secs_f64();
        stats
    }

    /// One phase of the replay path: inputs are forced directly (the
    /// tape knows their settle consequences), the recorded groups
    /// replace the good settle, then faulty settles and strobes run
    /// exactly as in [`ConcurrentSim::step_phase`].
    fn step_phase_replayed(
        &mut self,
        phase: &Phase,
        ptape: &PhaseTape,
        outputs: &[NodeId],
        pattern_idx: usize,
        phase_idx: usize,
        stats: &mut PatternStats,
    ) {
        // 1. Input changes (with the open-channel trigger special
        // case), via the same helper as the live path.
        self.apply_phase_inputs(phase, false);

        // 2. Replay the recorded good settle: per group, apply the
        // recorded state changes and trigger from the recorded support.
        let settle = &ptape.settle;
        for g in settle.groups() {
            for &(node, _old, new) in g.changed {
                self.good.force(node, new);
            }
            if let Some(gate) = self.gating.as_deref_mut() {
                for &(node, _, _) in g.changed {
                    gate.mark(node);
                }
            }
            let ConcurrentSim {
                records,
                attach,
                queue,
                dropped,
                overrides,
                triggered,
                ..
            } = self;
            trigger_group(
                records,
                attach,
                queue,
                dropped,
                overrides,
                triggered,
                g.members,
                g.support_rest.iter().copied(),
                g.changed,
            );
        }
        stats.good_groups += settle.num_groups();
        stats.damped |= settle.damped();
        self.metrics.local_replayed_groups += settle.num_groups() as u64;

        // 3. Faulty circuits, in circuit-id order.
        self.settle_triggered(stats);

        // 4. Strobe: compare observed outputs, detect and drop.
        if phase.strobe {
            self.observe(outputs, pattern_idx, phase_idx, stats);
        }
    }

    /// Step 1 of a phase, shared by the live and replay paths: applies
    /// every input assignment that actually changes the good circuit,
    /// with the open-channel trigger special case. The change/skip
    /// decision lives only here and — for the record pass — inside
    /// [`Engine::apply_input`], which skips unchanged inputs by the
    /// same `old == v` test; record and replay must agree on it for
    /// bit-identity, which is why neither decision is duplicated at a
    /// call site.
    fn apply_phase_inputs(&mut self, phase: &Phase, live: bool) {
        for &(n, v) in &phase.inputs {
            if self.good.node_state(n) == v {
                continue;
            }
            if let Some(gate) = self.gating.as_deref_mut() {
                gate.mark(n);
            }
            self.trigger_input_change(n);
            if live {
                // Schedule consequences; the good settle consumes them.
                self.engine.apply_input(&mut self.good, n, v);
            } else {
                // The tape already knows the consequences.
                self.good.force(n, v);
            }
        }
    }

    /// The special-case triggering for an input about to change: faulty
    /// circuits in which an open channel transistor of the input may
    /// conduct need a private event even though the good circuit shows
    /// no activity there.
    fn trigger_input_change(&mut self, n: NodeId) {
        let net = self.net;
        for &t in net.channel_transistors(n) {
            if self.good.conduction(t).may_conduct() {
                continue; // good settle will solve and trigger normally
            }
            let tr = net.transistor(t);
            let other = tr.other_end(n);
            self.triggered.clear();
            let ConcurrentSim {
                records,
                attach,
                dropped,
                triggered,
                ..
            } = self;
            records.for_circuits_at(tr.gate, |c| {
                if !dropped[c as usize] {
                    triggered.push(c);
                }
            });
            for s in [tr.gate, other, n] {
                for &c in attach.row(s.index()) {
                    if !dropped[c as usize] {
                        triggered.push(c);
                    }
                }
            }
            triggered.sort_unstable();
            triggered.dedup();
            let gated = self.gating.is_some();
            for &c in self.triggered.iter() {
                // Under activity gating, an attached circuit that
                // neither diverges at the transistor's gate nor forces
                // the transistor (or its gate) sees the same open
                // switch as the good circuit, so the input change
                // cannot propagate through it: skip the trigger. This
                // test is exact — the circuit's conduction of `t` is
                // determined by exactly these three overlays.
                if gated {
                    let ov = &self.overrides[c as usize];
                    if ov.forced_conduction(t).is_none()
                        && ov.forced_value(tr.gate).is_none()
                        && self.records.get(tr.gate, c).is_none()
                    {
                        continue;
                    }
                }
                self.queue.schedule(CircuitId(c), other);
            }
        }
    }

    /// Compares observed outputs between good and every diverging
    /// circuit; detections are recorded and (by default) the circuits
    /// dropped.
    fn observe(
        &mut self,
        outputs: &[NodeId],
        pattern_idx: usize,
        phase_idx: usize,
        stats: &mut PatternStats,
    ) {
        // Activity gating: a live circuit whose cone saw no good-machine
        // event since the previous strobe is skipped — records inside
        // its cone (all of them, by the GatingState invariant) and the
        // good values of its forced/diverging outputs are unchanged, so
        // the previous strobe already adjudicated its divergence.
        if let Some(gate) = self.gating.as_deref_mut() {
            for k in 1..=self.fault_sets.len() {
                let c = u32::try_from(k).expect("circuit id fits");
                let q = !self.dropped[k] && gate.is_quiet(c);
                gate.quiet[k] = q;
                if q {
                    self.metrics.local_gated_skips += 1;
                }
            }
        }
        // The per-output record and forced lists are snapshotted into a
        // reusable scratch buffer (detections drop circuits, mutating
        // the record store mid-iteration) — the allocation-free
        // equivalent of cloning each list.
        let mut strobe = std::mem::take(&mut self.strobe_scratch);
        for &out in outputs {
            let goodv = self.good.node_state(out);
            strobe.clear();
            self.records.for_records_at(out, |c, v| strobe.push((c, v)));
            for &(circ, val) in &strobe {
                if self.gating.as_ref().is_some_and(|g| g.quiet[circ as usize]) {
                    continue;
                }
                self.maybe_detect(circ, goodv, val, pattern_idx, phase_idx, stats);
            }
            strobe.clear();
            strobe.extend_from_slice(self.forced_at.row(out.index()));
            for &(circ, val) in &strobe {
                if self.gating.as_ref().is_some_and(|g| g.quiet[circ as usize]) {
                    continue;
                }
                if val != goodv {
                    self.maybe_detect(circ, goodv, val, pattern_idx, phase_idx, stats);
                }
            }
        }
        self.strobe_scratch = strobe;
        if let Some(gate) = self.gating.as_deref_mut() {
            gate.clear();
        }
    }

    fn maybe_detect(
        &mut self,
        circ: u32,
        goodv: Logic,
        faultyv: Logic,
        pattern_idx: usize,
        phase_idx: usize,
        stats: &mut PatternStats,
    ) {
        if self.dropped[circ as usize] || self.detected_once[circ as usize] {
            return;
        }
        debug_assert_ne!(goodv, faultyv, "divergence records imply difference");
        let definite = goodv.is_definite() && faultyv.is_definite();
        let counts = match self.config.policy {
            DetectionPolicy::AnyDifference => true,
            DetectionPolicy::DefiniteOnly => definite,
        };
        if !counts {
            return;
        }
        self.detected_once[circ as usize] = true;
        self.detections.push(Detection {
            fault: FaultId(circ - 1),
            pattern: pattern_idx,
            phase: phase_idx,
            good: goodv,
            faulty: faultyv,
        });
        stats.detected += 1;
        self.metrics.detections.inc();
        if self.config.drop_on_detect {
            self.drop_circuit(circ);
        }
    }

    fn drop_circuit(&mut self, circ: u32) {
        debug_assert!(!self.dropped[circ as usize]);
        self.dropped[circ as usize] = true;
        self.live -= 1;
        self.records.drop_circuit(circ);
        // Queued events for the circuit (if any) are skipped at drain:
        // the flat queue needs no removal here.
        self.metrics.faults_dropped.inc();
        self.metrics.faults_live.set(self.live as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmossim_faults::FaultUniverse;
    use fmossim_netlist::{Drive, Size, TransistorType};

    /// CMOS inverter with observable output; two node faults.
    fn inverter() -> (Network, NodeId, NodeId) {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::L);
        let out = net.add_storage("OUT", Size::S1);
        net.add_transistor(TransistorType::P, Drive::D2, a, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, a, out, gnd);
        (net, a, out)
    }

    fn toggle_patterns(a: NodeId) -> Vec<Pattern> {
        vec![
            Pattern::labelled(vec![Phase::strobe(vec![(a, Logic::L)])], "A=0"),
            Pattern::labelled(vec![Phase::strobe(vec![(a, Logic::H)])], "A=1"),
        ]
    }

    #[test]
    fn detects_output_stuck_faults() {
        let (net, a, out) = inverter();
        let universe = FaultUniverse::stuck_nodes(&net);
        assert_eq!(universe.len(), 2);
        let mut sim = ConcurrentSim::new(&net, universe.faults(), ConcurrentConfig::paper());
        let report = sim.run(&toggle_patterns(a), &[out]);
        assert_eq!(report.detected(), 2, "both stuck faults detected");
        assert_eq!(sim.live(), 0);
        // OUT stuck-at-0: detected when good OUT is 1 (first pattern).
        // OUT stuck-at-1: detected when good OUT is 0 (second pattern).
        let by_fault: Vec<usize> = report.patterns_to_detect();
        assert_eq!(by_fault, vec![1, 2]);
    }

    #[test]
    fn transistor_stuck_faults_detected() {
        let (net, a, out) = inverter();
        let universe = FaultUniverse::stuck_transistors(&net);
        assert_eq!(universe.len(), 4);
        let mut sim = ConcurrentSim::new(&net, universe.faults(), ConcurrentConfig::paper());
        let report = sim.run(&toggle_patterns(a), &[out]);
        // Pull-up stuck-open: OUT floats (keeps old charge) when A=0 —
        // from reset that charge is X, so with AnyDifference it is
        // detected. Pull-up stuck-closed: fights the pull-down when
        // A=1 → X difference. Same for the pull-down pair.
        assert_eq!(report.detected(), 4);
    }

    #[test]
    fn undetectable_fault_survives() {
        // A fault on a node that never influences the observed output.
        let (mut net, a, out) = inverter();
        let gnd = net.find_node("Gnd").expect("exists");
        let dead = net.add_storage("DEAD", Size::S1);
        let en = net.add_input("EN", Logic::L);
        net.add_transistor(TransistorType::N, Drive::D2, en, dead, gnd);
        let faults = vec![Fault::NodeStuck {
            node: dead,
            value: Logic::H,
        }];
        let mut sim = ConcurrentSim::new(&net, &faults, ConcurrentConfig::paper());
        let report = sim.run(&toggle_patterns(a), &[out]);
        assert_eq!(report.detected(), 0);
        assert_eq!(sim.live(), 1);
        assert_eq!(report.coverage(), 0.0);
    }

    #[test]
    fn fault_state_reads_overlay() {
        let (net, a, out) = inverter();
        let faults = vec![Fault::NodeStuck {
            node: out,
            value: Logic::H,
        }];
        let mut sim = ConcurrentSim::new(
            &net,
            &faults,
            ConcurrentConfig {
                drop_on_detect: false,
                ..ConcurrentConfig::default()
            },
        );
        let patterns = toggle_patterns(a);
        sim.run(&patterns, &[out]);
        // After A=1, good OUT is 0 but the faulty circuit holds 1.
        assert_eq!(sim.good_state(out), Logic::L);
        assert_eq!(sim.fault_state(FaultId(0), out), Logic::H);
    }

    #[test]
    fn no_drop_keeps_simulating_but_counts_once() {
        let (net, a, out) = inverter();
        let universe = FaultUniverse::stuck_nodes(&net);
        let mut sim = ConcurrentSim::new(
            &net,
            universe.faults(),
            ConcurrentConfig {
                drop_on_detect: false,
                ..ConcurrentConfig::default()
            },
        );
        // Toggle repeatedly: each fault is detectable many times but
        // must be counted once.
        let mut patterns = Vec::new();
        for _ in 0..4 {
            patterns.extend(toggle_patterns(a));
        }
        let report = sim.run(&patterns, &[out]);
        assert_eq!(report.detected(), 2);
        assert_eq!(sim.live(), 2, "nothing dropped");
    }

    #[test]
    fn definite_only_policy_ignores_x_differences() {
        let (net, a, out) = inverter();
        // Pull-down stuck-open: when A=1 the output floats at its old
        // charge; right after reset that is X → only a potential
        // detection.
        let t_n = net
            .transistors()
            .find(|(_, t)| t.ttype == TransistorType::N)
            .map(|(id, _)| id)
            .expect("n transistor exists");
        let faults = vec![Fault::TransistorStuckOpen(t_n)];
        let patterns = vec![Pattern::new(vec![Phase::strobe(vec![(a, Logic::H)])])];

        let mut strict = ConcurrentSim::new(
            &net,
            &faults,
            ConcurrentConfig {
                policy: DetectionPolicy::DefiniteOnly,
                drop_on_detect: true,
                ..ConcurrentConfig::default()
            },
        );
        let report = strict.run(&patterns, &[out]);
        assert_eq!(report.detected(), 0, "X difference not definite");

        let mut loose = ConcurrentSim::new(&net, &faults, ConcurrentConfig::paper());
        let report = loose.run(&patterns, &[out]);
        assert_eq!(report.detected(), 1, "X difference counts by default");
        assert!(report.detections[0].is_potential());
    }

    #[test]
    fn bridge_fault_through_injection() {
        // Two independent inverters; bridge their outputs. Driving them
        // to opposite values makes the short visible.
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::L);
        let b = net.add_input("B", Logic::H);
        let out_a = net.add_storage("OA", Size::S1);
        let out_b = net.add_storage("OB", Size::S1);
        for (inp, out) in [(a, out_a), (b, out_b)] {
            net.add_transistor(TransistorType::P, Drive::D2, inp, vdd, out);
            net.add_transistor(TransistorType::N, Drive::D2, inp, out, gnd);
        }
        let bridge = fmossim_faults::inject::insert_bridge(&mut net, out_a, out_b, "oa-ob");
        let mut sim = ConcurrentSim::new(&net, &[bridge], ConcurrentConfig::paper());
        let patterns = vec![Pattern::new(vec![Phase::strobe(vec![
            (a, Logic::L),
            (b, Logic::H),
        ])])];
        let report = sim.run(&patterns, &[out_a, out_b]);
        // Good: OA=1, OB=0. Bridged: both X (equal-strength fight).
        assert_eq!(report.detected(), 1);
        assert!(report.detections[0].is_potential());
    }

    #[test]
    fn multi_fault_circuits_combine_effects() {
        let (net, a, out) = inverter();
        let t_n = net
            .transistors()
            .find(|(_, t)| t.ttype == TransistorType::N)
            .map(|(id, _)| id)
            .expect("pulldown exists");
        let sa1 = Fault::NodeStuck {
            node: out,
            value: Logic::H,
        };
        let open = Fault::TransistorStuckOpen(t_n);
        // Three circuits: each single fault, and both together.
        let mut sim = ConcurrentSim::new_multi(
            &net,
            vec![vec![sa1], vec![open], vec![sa1, open]],
            ConcurrentConfig {
                drop_on_detect: false,
                ..ConcurrentConfig::default()
            },
        );
        assert_eq!(sim.fault_sets().len(), 3);
        assert_eq!(sim.fault_sets()[2].len(), 2);
        let patterns = toggle_patterns(a);
        let report = sim.run(&patterns, &[out]);
        // After A=1 (good OUT = 0):
        //   sa1 alone:   OUT forced 1      -> definite detection
        //   open alone:  OUT floats old H… (charge from A=0 phase) -> 1
        //   both:        the node force dominates -> 1
        assert_eq!(sim.fault_state(FaultId(0), out), Logic::H);
        assert_eq!(sim.fault_state(FaultId(2), out), Logic::H);
        // All three circuits detected (each differs from good at A=1).
        assert_eq!(report.detected(), 3);
        // The combined circuit behaves like the dominating node fault:
        // detected at the same pattern with the same values.
        let by_fault: Vec<Option<&Detection>> = (0..3)
            .map(|k| report.detections.iter().find(|d| d.fault == FaultId(k)))
            .collect();
        let d_sa1 = by_fault[0].expect("sa1 detected");
        let d_both = by_fault[2].expect("combined detected");
        assert_eq!(
            (d_sa1.pattern, d_sa1.faulty),
            (d_both.pattern, d_both.faulty)
        );
    }

    /// The simulator is `Send`: shard drivers move one `ConcurrentSim`
    /// per worker thread (the shared `&Network` is `Sync`). Compile-time
    /// assertion — if a non-`Send` field is ever introduced, this stops
    /// building.
    #[test]
    fn concurrent_sim_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ConcurrentSim<'static>>();
        assert_send::<crate::report::RunReport>();
    }

    #[test]
    fn external_drop_fault_hook() {
        let (net, a, out) = inverter();
        let universe = FaultUniverse::stuck_nodes(&net);
        let mut sim = ConcurrentSim::new(&net, universe.faults(), ConcurrentConfig::paper());
        assert_eq!(sim.live(), 2);
        assert!(sim.drop_fault(FaultId(0)), "live fault drops");
        assert!(!sim.drop_fault(FaultId(0)), "double drop refused");
        assert!(!sim.drop_fault(FaultId(99)), "out of range refused");
        assert_eq!(sim.live(), 1);
        // The dropped circuit is never simulated or detected again.
        let report = sim.run(&toggle_patterns(a), &[out]);
        assert_eq!(report.detected(), 1);
        assert_eq!(report.detections[0].fault, FaultId(1));
        assert_eq!(sim.live(), 0);
    }

    /// Replay against a recorded tape must match recompute bit for bit
    /// (the workspace-level `replay_equivalence` suite covers the
    /// benchmark circuits; this is the smallest instance).
    #[test]
    fn replayed_run_matches_recomputed() {
        let (net, a, out) = inverter();
        let universe =
            FaultUniverse::stuck_nodes(&net).union(FaultUniverse::stuck_transistors(&net));
        let patterns = toggle_patterns(a);
        let config = ConcurrentConfig::paper();

        let mut live = ConcurrentSim::new(&net, universe.faults(), config);
        let live_report = live.run(&patterns, &[out]);

        let tape = crate::tape::GoodTape::record(&net, &patterns, config.engine);
        let mut replay = ConcurrentSim::new(&net, universe.faults(), config);
        let replay_report = replay.run_replayed(&patterns, &[out], &tape);

        assert_eq!(replay_report.detections, live_report.detections);
        assert_eq!(replay.live(), live.live());
        assert_eq!(replay.record_count(), live.record_count());
        for (r, l) in replay_report.patterns.iter().zip(&live_report.patterns) {
            assert_eq!(r.detected, l.detected);
            assert_eq!(r.live_before, l.live_before);
            assert_eq!(r.good_groups, l.good_groups);
            assert_eq!(r.faulty_groups, l.faulty_groups);
            assert_eq!(r.circuit_settles, l.circuit_settles);
            assert_eq!(r.damped, l.damped);
        }
    }

    /// Driving replay pattern by pattern through the public step API
    /// on a fresh simulator must match the live step API — in
    /// particular, the constructor's pending all-storage perturbation
    /// must not leak into the first faulty settle.
    #[test]
    fn step_level_replay_matches_live_steps() {
        let (net, a, out) = inverter();
        let universe =
            FaultUniverse::stuck_nodes(&net).union(FaultUniverse::stuck_transistors(&net));
        let patterns = toggle_patterns(a);
        let config = ConcurrentConfig::paper();
        let tape = crate::tape::GoodTape::record(&net, &patterns, config.engine);

        let mut live = ConcurrentSim::new(&net, universe.faults(), config);
        let mut replay = ConcurrentSim::new(&net, universe.faults(), config);
        for (pi, pattern) in patterns.iter().enumerate() {
            let l = live.step_pattern(pattern, &[out], pi);
            let r = replay.step_pattern_replayed(pattern, tape.pattern(pi), &[out], pi);
            assert_eq!(
                (
                    r.detected,
                    r.live_before,
                    r.faulty_groups,
                    r.circuit_settles
                ),
                (
                    l.detected,
                    l.live_before,
                    l.faulty_groups,
                    l.circuit_settles
                ),
                "pattern {pi}"
            );
        }
        assert_eq!(replay.detections(), live.detections());
        assert_eq!(replay.record_count(), live.record_count());
    }

    /// Two independent inverters so activity gating has something to
    /// skip: patterns that only toggle A leave B's half event-free.
    fn two_inverters() -> (Network, [NodeId; 4]) {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::L);
        let b = net.add_input("B", Logic::L);
        let oa = net.add_storage("OA", Size::S1);
        let ob = net.add_storage("OB", Size::S1);
        for (inp, out) in [(a, oa), (b, ob)] {
            net.add_transistor(TransistorType::P, Drive::D2, inp, vdd, out);
            net.add_transistor(TransistorType::N, Drive::D2, inp, out, gnd);
        }
        (net, [a, b, oa, ob])
    }

    /// Activity gating must not change a single detection, drop, or
    /// surviving fault state — only work counters may differ.
    #[test]
    fn gating_is_bit_identical_and_skips() {
        let (net, [a, b, oa, ob]) = two_inverters();
        let universe =
            FaultUniverse::stuck_nodes(&net).union(FaultUniverse::stuck_transistors(&net));
        // Several strobes that only move A: B's cone stays quiet.
        let patterns = vec![
            Pattern::new(vec![Phase::strobe(vec![(a, Logic::L), (b, Logic::L)])]),
            Pattern::new(vec![Phase::strobe(vec![(a, Logic::H)])]),
            Pattern::new(vec![Phase::strobe(vec![(a, Logic::L)])]),
            Pattern::new(vec![Phase::strobe(vec![(a, Logic::H), (b, Logic::H)])]),
        ];
        for (policy, drop) in [
            (DetectionPolicy::DefiniteOnly, true),
            (DetectionPolicy::DefiniteOnly, false),
            (DetectionPolicy::AnyDifference, true),
        ] {
            let base = ConcurrentConfig {
                policy,
                drop_on_detect: drop,
                ..ConcurrentConfig::paper()
            };
            let mut plain = ConcurrentSim::new(&net, universe.faults(), base);
            let plain_report = plain.run(&patterns, &[oa, ob]);
            let gated_cfg = ConcurrentConfig {
                gating: true,
                ..base
            };
            let registry = Registry::new();
            let mut gated = ConcurrentSim::new(&net, universe.faults(), gated_cfg);
            gated.attach_metrics(&registry);
            let gated_report = gated.run(&patterns, &[oa, ob]);
            assert_eq!(gated_report.detections, plain_report.detections);
            assert_eq!(gated.live(), plain.live());
            for (id, _) in universe.iter() {
                assert_eq!(
                    gated.export_fault(id),
                    plain.export_fault(id),
                    "fault {id} state"
                );
            }
            assert!(
                registry.counter("core.gated_skips").get() > 0,
                "quiet circuits were skipped"
            );
        }
    }

    /// Gating under tape replay matches the plain replayed run too.
    #[test]
    fn gating_matches_under_replay() {
        let (net, [a, b, oa, ob]) = two_inverters();
        let universe =
            FaultUniverse::stuck_nodes(&net).union(FaultUniverse::stuck_transistors(&net));
        let patterns = vec![
            Pattern::new(vec![Phase::strobe(vec![(a, Logic::L), (b, Logic::L)])]),
            Pattern::new(vec![Phase::strobe(vec![(a, Logic::H)])]),
            Pattern::new(vec![Phase::strobe(vec![(b, Logic::H)])]),
        ];
        let base = ConcurrentConfig::paper();
        let tape = crate::tape::GoodTape::record(&net, &patterns, base.engine);
        let mut plain = ConcurrentSim::new(&net, universe.faults(), base);
        let plain_report = plain.run_replayed(&patterns, &[oa, ob], &tape);
        let mut gated = ConcurrentSim::new(
            &net,
            universe.faults(),
            ConcurrentConfig {
                gating: true,
                ..base
            },
        );
        let gated_report = gated.run_replayed(&patterns, &[oa, ob], &tape);
        assert_eq!(gated_report.detections, plain_report.detections);
        assert_eq!(gated.live(), plain.live());
    }

    /// Export at a pattern boundary, re-partition the surviving faults
    /// into *different* simulators, resume, replay the rest of the
    /// sequence batch by batch: detections (with global pattern
    /// indices) must equal the unbroken run's.
    #[test]
    fn export_resume_repartition_is_bit_identical() {
        let (net, a, out) = inverter();
        let universe =
            FaultUniverse::stuck_nodes(&net).union(FaultUniverse::stuck_transistors(&net));
        let mut patterns = toggle_patterns(a);
        patterns.extend(toggle_patterns(a));
        let config = ConcurrentConfig {
            drop_on_detect: false, // keep every circuit alive across the cut
            ..ConcurrentConfig::default()
        };

        let mut whole = ConcurrentSim::new(&net, universe.faults(), config);
        let whole_report = whole.run(&patterns, &[out]);

        let cut = 1;
        let mut recorder = crate::tape::TapeRecorder::new(&net, config.engine);
        let tape0 = recorder.record(&patterns[..cut]);
        let mut first = ConcurrentSim::new(&net, universe.faults(), config);
        let rep0 = first.run_replayed_from(&patterns[..cut], &[out], &tape0, 0);

        // Boundary: snapshot the good machine and every fault, then
        // deal the faults to two new simulators in reversed order.
        let boundary_good = recorder.good_state().clone();
        let n = universe.len();
        let snaps: Vec<FaultSnapshot> = (0..n)
            .map(|k| {
                first
                    .export_fault(FaultId(u32::try_from(k).unwrap()))
                    .expect("nothing dropped")
            })
            .collect();
        let tape1 = recorder.record(&patterns[cut..]);
        let (half_a, half_b) = universe.faults().split_at(n / 2);
        let (snap_a, snap_b) = snaps.split_at(n / 2);
        let mut detections = rep0.detections.clone();
        for (faults, snaps, id_base) in [(half_b, snap_b, n / 2), (half_a, snap_a, 0)] {
            let mut sim = ConcurrentSim::resume(&net, faults, config, &boundary_good, snaps);
            let mut rep = sim.run_replayed_from(&patterns[cut..], &[out], &tape1, cut);
            rep.relabel_faults(|local| FaultId(u32::try_from(id_base + local.index()).unwrap()));
            detections.extend(rep.detections);
        }
        detections.sort_by_key(|d| (d.pattern, d.phase, d.fault.index()));
        let mut expected = whole_report.detections.clone();
        expected.sort_by_key(|d| (d.pattern, d.phase, d.fault.index()));
        assert_eq!(detections, expected);
    }

    #[test]
    fn export_fault_reports_dropped_and_out_of_range() {
        let (net, a, out) = inverter();
        let universe = FaultUniverse::stuck_nodes(&net);
        let mut sim = ConcurrentSim::new(&net, universe.faults(), ConcurrentConfig::paper());
        let _ = sim.run(&toggle_patterns(a), &[out]);
        assert_eq!(sim.export_fault(FaultId(0)), None, "dropped on detection");
        assert_eq!(sim.export_fault(FaultId(99)), None, "out of range");
    }

    #[test]
    #[should_panic(expected = "good tape does not match")]
    fn replay_rejects_mismatched_tape() {
        let (net, a, out) = inverter();
        let universe = FaultUniverse::stuck_nodes(&net);
        let patterns = toggle_patterns(a);
        let tape =
            crate::tape::GoodTape::record(&net, &patterns[..1], ConcurrentConfig::paper().engine);
        let mut sim = ConcurrentSim::new(&net, universe.faults(), ConcurrentConfig::paper());
        let _ = sim.run_replayed(&patterns, &[out], &tape);
    }

    #[test]
    fn record_count_shrinks_after_drop() {
        let (net, a, out) = inverter();
        let universe = FaultUniverse::stuck_nodes(&net);
        let mut sim = ConcurrentSim::new(&net, universe.faults(), ConcurrentConfig::paper());
        let report = sim.run(&toggle_patterns(a), &[out]);
        assert_eq!(report.detected(), 2);
        assert_eq!(sim.record_count(), 0, "all records reclaimed");
    }

    /// Runs the same workload scalar and packed and asserts detections,
    /// drops and the final record population are bit-identical.
    fn assert_packed_matches_scalar(
        net: &Network,
        faults: &[Fault],
        patterns: &[Pattern],
        outputs: &[NodeId],
        base: ConcurrentConfig,
    ) {
        let mut scalar = ConcurrentSim::new(net, faults, base);
        let s_rep = scalar.run(patterns, outputs);
        let packed_cfg = ConcurrentConfig {
            packing: true,
            ..base
        };
        let mut packed = ConcurrentSim::new(net, faults, packed_cfg);
        let p_rep = packed.run(patterns, outputs);
        assert_eq!(p_rep.detections, s_rep.detections);
        assert_eq!(packed.live(), scalar.live());
        assert_eq!(packed.record_count(), scalar.record_count());
        for k in 0..faults.len() {
            let f = FaultId(u32::try_from(k).unwrap());
            for (n, _) in net.nodes() {
                assert_eq!(
                    packed.fault_state(f, n),
                    scalar.fault_state(f, n),
                    "fault {k} node {n:?}"
                );
            }
        }
        for (p, s) in p_rep.patterns.iter().zip(&s_rep.patterns) {
            assert_eq!(p.detected, s.detected);
            assert_eq!(p.live_before, s.live_before);
            assert_eq!(p.circuit_settles, s.circuit_settles);
            assert_eq!(p.damped, s.damped);
        }
    }

    #[test]
    fn packed_matches_scalar_on_inverter_stuck_faults() {
        let (net, a, out) = inverter();
        let universe =
            FaultUniverse::stuck_nodes(&net).union(FaultUniverse::stuck_transistors(&net));
        let mut patterns = toggle_patterns(a);
        patterns.extend(toggle_patterns(a));
        for drop_on_detect in [true, false] {
            assert_packed_matches_scalar(
                &net,
                universe.faults(),
                &patterns,
                &[out],
                ConcurrentConfig {
                    drop_on_detect,
                    ..ConcurrentConfig::default()
                },
            );
        }
    }

    #[test]
    fn packed_falls_back_to_scalar_under_static_locality() {
        let (net, a, out) = inverter();
        let universe = FaultUniverse::stuck_nodes(&net);
        let config = ConcurrentConfig {
            packing: true,
            engine: EngineConfig {
                locality: LocalityMode::Static,
                ..EngineConfig::default()
            },
            ..ConcurrentConfig::paper()
        };
        let mut sim = ConcurrentSim::new(&net, universe.faults(), config);
        assert!(sim.packed.is_none(), "static locality disables packing");
        let report = sim.run(&toggle_patterns(a), &[out]);
        assert_eq!(report.detected(), 2);
    }

    #[test]
    fn packed_chunks_split_buckets_beyond_64_lanes() {
        // 80 circuits carrying the same stuck-at fault: one bucket,
        // two chunks (64 + 16). All are detected identically.
        let (net, a, out) = inverter();
        let fault = Fault::NodeStuck {
            node: out,
            value: Logic::H,
        };
        let sets: Vec<Vec<Fault>> = (0..80).map(|_| vec![fault]).collect();
        let config = ConcurrentConfig {
            packing: true,
            ..ConcurrentConfig::paper()
        };
        let mut sim = ConcurrentSim::new_multi(&net, sets.clone(), config);
        let report = sim.run(&toggle_patterns(a), &[out]);
        let mut scalar = ConcurrentSim::new_multi(&net, sets, ConcurrentConfig::paper());
        let s_report = scalar.run(&toggle_patterns(a), &[out]);
        assert_eq!(report.detections, s_report.detections);
        assert_eq!(report.detected(), 80);
    }

    #[test]
    fn packed_emits_lane_metrics() {
        // Transistor faults: their seeds are ordinary storage nodes, so
        // the shared seed bucket actually reaches the packed solver
        // (stuck-node faults on OUT would leave every seed
        // input-classified in every lane).
        let (net, a, out) = inverter();
        let universe = FaultUniverse::stuck_transistors(&net);
        let registry = Registry::new();
        let config = ConcurrentConfig {
            packing: true,
            drop_on_detect: false,
            ..ConcurrentConfig::default()
        };
        let mut sim = ConcurrentSim::new(&net, universe.faults(), config);
        sim.attach_metrics(&registry);
        let _ = sim.run(&toggle_patterns(a), &[out]);
        let snap = registry.snapshot();
        let packed = snap.counters.get("switch.packed_solves").copied();
        assert!(
            packed.unwrap_or(0) > 0,
            "multi-lane buckets reach the packed solver: {snap:?}"
        );
        let occ = snap
            .histograms
            .get("switch.lane.occupancy")
            .expect("occupancy histogram minted");
        assert!(occ.count > 0, "occupancy observed per packed solve");
    }
}
