//! Divergence-record storage: the paper's per-node state lists.
//!
//! FMOSSIM keeps, for every node, a list of records `<i, s_i>` meaning
//! "in circuit `i` this node has state `s_i`", maintained only for
//! circuits whose state differs from the good circuit (§4). We keep the
//! lists sorted by circuit id — the modern equivalent of the paper's
//! sorted lists with shadow pointers — and additionally index, per
//! circuit, the set of nodes it has records on, so that dropping a
//! detected circuit reclaims its records in time proportional to its
//! own divergence, not the network size.
//!
//! An alternative hash-map backend ([`StateListStore::Hash`]) exists
//! solely for the `ablation_statelist` benchmark, which quantifies the
//! paper's claim that sorted lists keep search time negligible.

use fmossim_netlist::{Logic, NodeId};
use std::collections::HashMap;

/// Storage back-end selection for [`StateLists`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StateListStore {
    /// Per-node circuit-id-sorted vectors (the paper's design).
    #[default]
    SortedVec,
    /// A flat `HashMap<(node, circuit), state>` (ablation baseline).
    Hash,
}

/// Divergence records for all faulty circuits, overlaid on the good
/// circuit's dense state.
#[derive(Clone, Debug)]
pub struct StateLists {
    store: StateListStore,
    /// SortedVec backend: per node, `(circuit, state)` sorted by circuit.
    per_node: Vec<Vec<(u32, Logic)>>,
    /// Hash backend.
    map: HashMap<(u32, u32), Logic>,
    /// Per circuit: nodes this circuit has (or once had) records on.
    /// May contain stale entries (validated on drop); amortises circuit
    /// teardown.
    touched: Vec<Vec<NodeId>>,
    /// Number of live records.
    len: usize,
}

impl StateLists {
    /// Creates empty record storage for `num_nodes` nodes and
    /// `num_circuits` faulty circuits (circuit ids `1..=num_circuits`).
    #[must_use]
    pub fn new(num_nodes: usize, num_circuits: usize, store: StateListStore) -> Self {
        StateLists {
            store,
            per_node: vec![Vec::new(); num_nodes],
            map: HashMap::new(),
            touched: vec![Vec::new(); num_circuits + 1],
            len: 0,
        }
    }

    /// Re-initialises the storage for a new simulator over `num_nodes`
    /// nodes and `num_circuits` circuits, keeping every allocation the
    /// new shape can reuse — the arena-reuse path of
    /// [`SimArena`](crate::SimArena). Behaviour afterwards is
    /// indistinguishable from [`StateLists::new`].
    pub fn recycle(&mut self, num_nodes: usize, num_circuits: usize, store: StateListStore) {
        self.store = store;
        for list in &mut self.per_node {
            list.clear();
        }
        self.per_node.resize(num_nodes, Vec::new());
        self.map.clear();
        for nodes in &mut self.touched {
            nodes.clear();
        }
        self.touched.resize(num_circuits + 1, Vec::new());
        self.len = 0;
    }

    /// Number of live records across all circuits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no circuit diverges anywhere.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The state of node `n` in circuit `circuit`, if it diverges.
    #[must_use]
    pub fn get(&self, n: NodeId, circuit: u32) -> Option<Logic> {
        match self.store {
            StateListStore::SortedVec => {
                let list = &self.per_node[n.index()];
                list.binary_search_by_key(&circuit, |&(c, _)| c)
                    .ok()
                    .map(|i| list[i].1)
            }
            StateListStore::Hash => self
                .map
                .get(&(u32::try_from(n.index()).expect("node fits u32"), circuit))
                .copied(),
        }
    }

    /// Installs or updates the record for `(n, circuit)`.
    pub fn set(&mut self, n: NodeId, circuit: u32, v: Logic) {
        match self.store {
            StateListStore::SortedVec => {
                let list = &mut self.per_node[n.index()];
                match list.binary_search_by_key(&circuit, |&(c, _)| c) {
                    Ok(i) => {
                        list[i].1 = v;
                        return; // already touched
                    }
                    Err(i) => list.insert(i, (circuit, v)),
                }
            }
            StateListStore::Hash => {
                let key = (u32::try_from(n.index()).expect("node fits u32"), circuit);
                if self.map.insert(key, v).is_some() {
                    return;
                }
            }
        }
        self.len += 1;
        self.touched[circuit as usize].push(n);
    }

    /// Removes the record for `(n, circuit)` if present (the circuit's
    /// state converged back to the good circuit's).
    pub fn remove(&mut self, n: NodeId, circuit: u32) {
        let removed = match self.store {
            StateListStore::SortedVec => {
                let list = &mut self.per_node[n.index()];
                match list.binary_search_by_key(&circuit, |&(c, _)| c) {
                    Ok(i) => {
                        list.remove(i);
                        true
                    }
                    Err(_) => false,
                }
            }
            StateListStore::Hash => self
                .map
                .remove(&(u32::try_from(n.index()).expect("node fits u32"), circuit))
                .is_some(),
        };
        if removed {
            self.len -= 1;
        }
    }

    /// The circuits diverging at node `n`, as `(circuit, state)` pairs
    /// in ascending circuit order. (Hash backend: collected and sorted —
    /// that cost is what the ablation measures.)
    pub fn circuits_at(&self, n: NodeId) -> Vec<(u32, Logic)> {
        match self.store {
            StateListStore::SortedVec => self.per_node[n.index()].clone(),
            StateListStore::Hash => {
                let node = u32::try_from(n.index()).expect("node fits u32");
                let mut v: Vec<(u32, Logic)> = self
                    .map
                    .iter()
                    .filter(|((nn, _), _)| *nn == node)
                    .map(|(&(_, c), &s)| (c, s))
                    .collect();
                v.sort_unstable_by_key(|&(c, _)| c);
                v
            }
        }
    }

    /// Visits the circuits diverging at `n` without allocating
    /// (SortedVec backend only; used on the hot trigger path).
    pub fn for_circuits_at(&self, n: NodeId, mut f: impl FnMut(u32)) {
        match self.store {
            StateListStore::SortedVec => {
                for &(c, _) in &self.per_node[n.index()] {
                    f(c);
                }
            }
            StateListStore::Hash => {
                for (c, _) in self.circuits_at(n) {
                    f(c);
                }
            }
        }
    }

    /// Visits the records at `n` as `(circuit, state)` pairs without
    /// allocating (SortedVec backend; used by the packed-lane gather).
    pub fn for_records_at(&self, n: NodeId, mut f: impl FnMut(u32, Logic)) {
        match self.store {
            StateListStore::SortedVec => {
                for &(c, v) in &self.per_node[n.index()] {
                    f(c, v);
                }
            }
            StateListStore::Hash => {
                for (c, v) in self.circuits_at(n) {
                    f(c, v);
                }
            }
        }
    }

    /// Removes every record of `circuit` (fault dropped after
    /// detection). Returns the number of records reclaimed.
    pub fn drop_circuit(&mut self, circuit: u32) -> usize {
        let nodes = std::mem::take(&mut self.touched[circuit as usize]);
        let before = self.len;
        for n in nodes {
            self.remove(n, circuit);
        }
        before - self.len
    }

    /// The nodes circuit `circuit` currently diverges on (allocates;
    /// test/diagnostic use).
    #[must_use]
    pub fn nodes_of(&self, circuit: u32) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.touched[circuit as usize]
            .iter()
            .copied()
            .filter(|&n| self.get(n, circuit).is_some())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    fn both() -> [StateLists; 2] {
        [
            StateLists::new(8, 4, StateListStore::SortedVec),
            StateLists::new(8, 4, StateListStore::Hash),
        ]
    }

    #[test]
    fn set_get_remove_roundtrip() {
        for mut s in both() {
            assert!(s.is_empty());
            s.set(n(3), 2, Logic::H);
            s.set(n(3), 1, Logic::L);
            s.set(n(5), 2, Logic::X);
            assert_eq!(s.len(), 3);
            assert_eq!(s.get(n(3), 2), Some(Logic::H));
            assert_eq!(s.get(n(3), 1), Some(Logic::L));
            assert_eq!(s.get(n(3), 3), None);
            // Update in place does not grow.
            s.set(n(3), 2, Logic::L);
            assert_eq!(s.len(), 3);
            assert_eq!(s.get(n(3), 2), Some(Logic::L));
            s.remove(n(3), 2);
            assert_eq!(s.get(n(3), 2), None);
            assert_eq!(s.len(), 2);
            // Removing twice is harmless.
            s.remove(n(3), 2);
            assert_eq!(s.len(), 2);
        }
    }

    #[test]
    fn circuits_at_is_sorted() {
        for mut s in both() {
            s.set(n(0), 3, Logic::H);
            s.set(n(0), 1, Logic::L);
            s.set(n(0), 2, Logic::X);
            let got = s.circuits_at(n(0));
            assert_eq!(
                got,
                vec![(1, Logic::L), (2, Logic::X), (3, Logic::H)],
                "sorted by circuit id"
            );
            let mut seen = Vec::new();
            s.for_circuits_at(n(0), |c| seen.push(c));
            assert_eq!(seen, vec![1, 2, 3]);
        }
    }

    #[test]
    fn drop_circuit_reclaims_only_its_records() {
        for mut s in both() {
            s.set(n(0), 1, Logic::H);
            s.set(n(1), 1, Logic::H);
            s.set(n(1), 2, Logic::L);
            let reclaimed = s.drop_circuit(1);
            assert_eq!(reclaimed, 2);
            assert_eq!(s.len(), 1);
            assert_eq!(s.get(n(1), 2), Some(Logic::L));
            assert_eq!(s.get(n(0), 1), None);
        }
    }

    #[test]
    fn drop_circuit_tolerates_stale_touched_entries() {
        for mut s in both() {
            s.set(n(0), 1, Logic::H);
            s.remove(n(0), 1); // converged: touched entry goes stale
            s.set(n(2), 1, Logic::L);
            assert_eq!(s.drop_circuit(1), 1);
            assert!(s.is_empty());
        }
    }

    #[test]
    fn nodes_of_reports_live_records() {
        for mut s in both() {
            s.set(n(4), 2, Logic::H);
            s.set(n(1), 2, Logic::H);
            s.set(n(1), 2, Logic::L); // update, not duplicate
            s.remove(n(4), 2);
            assert_eq!(s.nodes_of(2), vec![n(1)]);
        }
    }
}
