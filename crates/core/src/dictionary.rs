//! Fault dictionaries: full output signatures for diagnosis.
//!
//! A fault *dictionary* records, for every fault, the complete syndrome
//! it produces at the observed outputs over a test sequence — not just
//! the first detection. Given the syndrome observed on a failing part,
//! [`FaultDictionary::diagnose`] returns the candidate faults, and
//! [`FaultDictionary::equivalence_classes`] reports which faults the
//! test set cannot distinguish at all. This is the classic companion
//! application of a fault simulator (and a natural by-product of the
//! concurrent algorithm: the per-node state lists *are* the syndrome).

use crate::concurrent::{ConcurrentConfig, ConcurrentSim};
use crate::pattern::Pattern;
use crate::report::PatternStats;
use fmossim_faults::{Fault, FaultId};
use fmossim_netlist::{Logic, Network, NodeId};
use std::collections::HashMap;

/// One syndrome entry: a strobe at which the faulty output differed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Syndrome {
    /// Pattern index.
    pub pattern: u32,
    /// Phase index within the pattern.
    pub phase: u32,
    /// Index into the observed-outputs list.
    pub output: u32,
    /// The faulty circuit's value (the good value is the sequence's
    /// expected response and is not stored per fault).
    pub faulty: Logic,
}

/// The complete signature table for a fault list under a test sequence.
#[derive(Clone, Debug)]
pub struct FaultDictionary {
    /// Per fault: its syndrome entries, sorted.
    signatures: Vec<Vec<Syndrome>>,
}

impl FaultDictionary {
    /// Simulates every fault over `patterns` (without dropping) and
    /// records all output divergences at every strobe.
    #[must_use]
    pub fn build(
        net: &Network,
        faults: &[Fault],
        patterns: &[Pattern],
        outputs: &[NodeId],
        config: ConcurrentConfig,
    ) -> Self {
        let config = ConcurrentConfig {
            drop_on_detect: false,
            ..config
        };
        let mut sim = ConcurrentSim::new(net, faults, config);
        let mut signatures = vec![Vec::new(); faults.len()];
        for (pi, pattern) in patterns.iter().enumerate() {
            let mut stats = PatternStats::default();
            for (phi, phase) in pattern.phases.iter().enumerate() {
                sim.step_phase(phase, outputs, pi, phi, &mut stats);
                if phase.strobe {
                    for (fid, oi, _good, faulty) in sim.output_divergences(outputs) {
                        signatures[fid.index()].push(Syndrome {
                            pattern: u32::try_from(pi).expect("pattern index fits"),
                            phase: u32::try_from(phi).expect("phase index fits"),
                            output: u32::try_from(oi).expect("output index fits"),
                            faulty,
                        });
                    }
                }
            }
        }
        for sig in &mut signatures {
            sig.sort_unstable();
        }
        FaultDictionary { signatures }
    }

    /// Number of faults in the dictionary.
    #[must_use]
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// True iff built over an empty fault list.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// The full signature of fault `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    #[must_use]
    pub fn signature(&self, f: FaultId) -> &[Syndrome] {
        &self.signatures[f.index()]
    }

    /// Groups faults with *identical* signatures — the test set cannot
    /// distinguish members of a class from each other (for an empty
    /// signature: cannot detect them at all). Classes are returned in
    /// ascending order of their first member; singletons included.
    #[must_use]
    pub fn equivalence_classes(&self) -> Vec<Vec<FaultId>> {
        let mut by_sig: HashMap<&[Syndrome], Vec<FaultId>> = HashMap::new();
        for (i, sig) in self.signatures.iter().enumerate() {
            by_sig
                .entry(sig.as_slice())
                .or_default()
                .push(FaultId(u32::try_from(i).expect("fault id fits")));
        }
        let mut classes: Vec<Vec<FaultId>> = by_sig.into_values().collect();
        classes.sort_by_key(|c| c[0]);
        classes
    }

    /// Diagnosis: which faults are consistent with an observed
    /// syndrome? A fault is a candidate iff
    ///
    /// * every *definite* entry of its signature appears in the
    ///   observation (a tester sees all strobes, so a predicted
    ///   definite misbehaviour must have been seen — `X` predictions
    ///   may legitimately show up as either value or match the good
    ///   output), and
    /// * every observed entry is admitted by the signature (same
    ///   strobe present, with the predicted value admitting the
    ///   observed one).
    #[must_use]
    pub fn diagnose(&self, observed: &[Syndrome]) -> Vec<FaultId> {
        let obs_map: HashMap<(u32, u32, u32), Logic> = observed
            .iter()
            .map(|s| ((s.pattern, s.phase, s.output), s.faulty))
            .collect();
        let mut out = Vec::new();
        'faults: for (i, sig) in self.signatures.iter().enumerate() {
            if sig.is_empty() {
                continue; // undetectable fault cannot explain failures
            }
            let sig_map: HashMap<(u32, u32, u32), Logic> = sig
                .iter()
                .map(|s| ((s.pattern, s.phase, s.output), s.faulty))
                .collect();
            for (key, &pred) in &sig_map {
                match obs_map.get(key) {
                    Some(&seen) => {
                        if !pred.admits(seen) && pred != seen {
                            continue 'faults; // predicted 0, saw 1
                        }
                    }
                    None => {
                        if pred.is_definite() {
                            continue 'faults; // predicted definite, saw nothing
                        }
                    }
                }
            }
            for (key, &seen) in &obs_map {
                match sig_map.get(key) {
                    Some(&pred) => {
                        if !pred.admits(seen) && pred != seen {
                            continue 'faults;
                        }
                    }
                    None => continue 'faults, // unexplained misbehaviour
                }
            }
            out.push(FaultId(u32::try_from(i).expect("fault id fits")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Phase;
    use fmossim_faults::FaultUniverse;
    use fmossim_netlist::{Drive, Size, TransistorType};

    fn inverter() -> (Network, NodeId, NodeId) {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::L);
        let out = net.add_storage("OUT", Size::S1);
        net.add_transistor(TransistorType::P, Drive::D2, a, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, a, out, gnd);
        (net, a, out)
    }

    fn toggles(a: NodeId) -> Vec<Pattern> {
        vec![
            Pattern::new(vec![Phase::strobe(vec![(a, Logic::L)])]),
            Pattern::new(vec![Phase::strobe(vec![(a, Logic::H)])]),
            Pattern::new(vec![Phase::strobe(vec![(a, Logic::L)])]),
        ]
    }

    fn build_inverter_dict() -> (Network, NodeId, NodeId, FaultUniverse, FaultDictionary) {
        let (net, a, out) = inverter();
        let universe =
            FaultUniverse::stuck_nodes(&net).union(FaultUniverse::stuck_transistors(&net));
        let dict = FaultDictionary::build(
            &net,
            universe.faults(),
            &toggles(a),
            &[out],
            ConcurrentConfig::default(),
        );
        (net, a, out, universe, dict)
    }

    #[test]
    fn signatures_capture_full_behaviour() {
        let (_net, _a, _out, universe, dict) = build_inverter_dict();
        assert_eq!(dict.len(), universe.len());
        // OUT stuck-at-0 (fault 0): differs whenever good OUT = 1,
        // i.e. patterns 0 and 2.
        let sig = dict.signature(FaultId(0));
        assert_eq!(sig.len(), 2);
        assert!(sig.iter().all(|s| s.faulty == Logic::L));
        assert_eq!(sig[0].pattern, 0);
        assert_eq!(sig[1].pattern, 2);
        // OUT stuck-at-1 (fault 1): differs at pattern 1 only.
        let sig = dict.signature(FaultId(1));
        assert_eq!(sig.len(), 1);
        assert_eq!(sig[0].pattern, 1);
    }

    #[test]
    fn equivalence_classes_group_indistinguishable_faults() {
        let (net, _a, _out, universe, dict) = build_inverter_dict();
        let classes = dict.equivalence_classes();
        // Every fault appears exactly once across all classes.
        let total: usize = classes.iter().map(Vec::len).sum();
        assert_eq!(total, universe.len());
        // Members of a class really do share a signature.
        for class in &classes {
            let first = dict.signature(class[0]);
            for &f in &class[1..] {
                assert_eq!(
                    dict.signature(f),
                    first,
                    "{} vs {}",
                    universe.fault(class[0]).describe(&net),
                    universe.fault(f).describe(&net)
                );
            }
        }
    }

    #[test]
    fn diagnose_narrows_to_consistent_faults() {
        let (net, _a, out, universe, dict) = build_inverter_dict();
        let _ = (net, out);
        // Simulate a tester observing exactly OUT-stuck-at-0's syndrome.
        let observed: Vec<Syndrome> = dict.signature(FaultId(0)).to_vec();
        let candidates = dict.diagnose(&observed);
        assert!(
            candidates.contains(&FaultId(0)),
            "true fault is a candidate"
        );
        // The stuck-at-1 fault is not consistent with this syndrome.
        assert!(!candidates.contains(&FaultId(1)));
        let _ = universe;
    }

    #[test]
    fn diagnose_rejects_unexplained_failures() {
        let (_net, _a, _out, _universe, dict) = build_inverter_dict();
        // A syndrome at a strobe where no fault of the universe makes
        // the output differ in this direction… pattern 0 with faulty=H
        // equals the good value; no signature contains it.
        let bogus = vec![Syndrome {
            pattern: 0,
            phase: 0,
            output: 7, // nonexistent output index
            faulty: Logic::H,
        }];
        assert!(dict.diagnose(&bogus).is_empty());
    }

    #[test]
    fn empty_dictionary() {
        let (net, a, out) = inverter();
        let dict =
            FaultDictionary::build(&net, &[], &toggles(a), &[out], ConcurrentConfig::default());
        assert!(dict.is_empty());
        assert!(dict.equivalence_classes().is_empty());
        assert!(dict.diagnose(&[]).is_empty());
    }
}
