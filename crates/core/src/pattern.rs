//! Stimulus types: phases and patterns.
//!
//! The paper's evaluation drives the RAM circuits with *patterns*, each
//! of which "actually represents a sequence of 6 input settings to
//! cycle the clocks" (§5). We model a [`Pattern`] as a list of
//! [`Phase`]s; each phase applies a batch of input changes, settles the
//! network, and optionally *strobes* (compares observed outputs between
//! good and faulty circuits).

use fmossim_netlist::{Fnv1a, Logic, NodeId};

/// One input setting: a batch of input changes followed by a settle.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Phase {
    /// Input assignments applied at the start of the phase.
    pub inputs: Vec<(NodeId, Logic)>,
    /// Whether observed outputs are compared (and faults detected) at
    /// the end of this phase.
    pub strobe: bool,
}

impl Phase {
    /// A phase applying `inputs` without strobing.
    #[must_use]
    pub fn apply(inputs: Vec<(NodeId, Logic)>) -> Self {
        Phase {
            inputs,
            strobe: false,
        }
    }

    /// A phase applying `inputs` and strobing the outputs afterwards.
    #[must_use]
    pub fn strobe(inputs: Vec<(NodeId, Logic)>) -> Self {
        Phase {
            inputs,
            strobe: true,
        }
    }
}

/// A test pattern: a fixed sequence of phases (six for the paper's RAM
/// sequences: clock cycling plus an observation strobe).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Pattern {
    /// The phases, applied in order.
    pub phases: Vec<Phase>,
    /// Optional human-readable label ("march w0 @(3,4)" etc.), used in
    /// reports and failure diagnostics.
    pub label: String,
}

impl Pattern {
    /// Creates a pattern from phases with an empty label.
    #[must_use]
    pub fn new(phases: Vec<Phase>) -> Self {
        Pattern {
            phases,
            label: String::new(),
        }
    }

    /// Creates a labelled pattern.
    #[must_use]
    pub fn labelled(phases: Vec<Phase>, label: impl Into<String>) -> Self {
        Pattern {
            phases,
            label: label.into(),
        }
    }
}

/// A stable 64-bit FNV-1a fingerprint of a stimulus — the pattern half
/// of the campaign server's good-tape cache key (paired with
/// [`fmossim_netlist::Network::content_hash`]).
///
/// The encoding covers exactly what the simulator consumes: pattern
/// count, then per pattern its phase count, then per phase the input
/// assignments in listed order as `(node index, logic char)` plus the
/// strobe flag. Pattern *labels* are deliberately excluded — they are
/// report decoration, and two stimuli that differ only in labels drive
/// the good machine identically, so they must share a tape.
///
/// Input order within a phase is hashed as given: `[(A,1),(B,0)]` and
/// `[(B,0),(A,1)]` hash differently. Generators in this workspace emit
/// inputs in a fixed canonical order, so this never splits a cache line
/// in practice, and it keeps the hash a pure function of the bytes the
/// engine sees.
///
/// ```
/// use fmossim_core::{stimulus_content_hash, Pattern, Phase};
/// use fmossim_netlist::{Logic, NodeId};
///
/// let n = NodeId::from_index(2);
/// let a = vec![Pattern::new(vec![Phase::strobe(vec![(n, Logic::H)])])];
/// let b = vec![Pattern::labelled(
///     vec![Phase::strobe(vec![(n, Logic::H)])],
///     "write 1",
/// )];
/// // Labels do not affect the hash ...
/// assert_eq!(stimulus_content_hash(&a), stimulus_content_hash(&b));
/// // ... but the applied values do.
/// let c = vec![Pattern::new(vec![Phase::strobe(vec![(n, Logic::L)])])];
/// assert_ne!(stimulus_content_hash(&a), stimulus_content_hash(&c));
/// ```
#[must_use]
pub fn stimulus_content_hash(patterns: &[Pattern]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_usize(patterns.len());
    for pattern in patterns {
        h.write_usize(pattern.phases.len());
        for phase in &pattern.phases {
            h.write_usize(phase.inputs.len());
            for &(node, value) in &phase.inputs {
                h.write_usize(node.index());
                h.write_u8(value.to_char() as u8);
            }
            h.write_u8(u8::from(phase.strobe));
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let n = NodeId::from_index(0);
        let p = Phase::apply(vec![(n, Logic::H)]);
        assert!(!p.strobe);
        let p = Phase::strobe(vec![]);
        assert!(p.strobe);
        let pat = Pattern::labelled(vec![p.clone()], "read cell 3");
        assert_eq!(pat.label, "read cell 3");
        assert_eq!(pat.phases.len(), 1);
        assert_eq!(Pattern::new(vec![p]).label, "");
    }

    #[test]
    fn stimulus_hash_is_deterministic_and_sensitive() {
        let n0 = NodeId::from_index(0);
        let n1 = NodeId::from_index(1);
        let base = vec![
            Pattern::new(vec![
                Phase::apply(vec![(n0, Logic::H), (n1, Logic::L)]),
                Phase::strobe(vec![(n0, Logic::L)]),
            ]),
            Pattern::new(vec![Phase::strobe(vec![])]),
        ];
        let h = stimulus_content_hash(&base);
        assert_eq!(h, stimulus_content_hash(&base.clone()));

        // Flipping a strobe flag changes the hash.
        let mut m = base.clone();
        m[0].phases[0].strobe = true;
        assert_ne!(stimulus_content_hash(&m), h);

        // A different target node changes the hash.
        let mut m = base.clone();
        m[0].phases[1].inputs[0].0 = n1;
        assert_ne!(stimulus_content_hash(&m), h);

        // Dropping a pattern changes the hash.
        assert_ne!(stimulus_content_hash(&base[..1]), h);

        // Phase-count aliasing: [2 phases] + [1 phase] must differ
        // from [1 phase] + [2 phases] even with identical flattening.
        let p = Phase::strobe(vec![]);
        let a = vec![
            Pattern::new(vec![p.clone(), p.clone()]),
            Pattern::new(vec![p.clone()]),
        ];
        let b = vec![
            Pattern::new(vec![p.clone()]),
            Pattern::new(vec![p.clone(), p]),
        ];
        assert_ne!(stimulus_content_hash(&a), stimulus_content_hash(&b));
    }

    #[test]
    fn stimulus_hash_ignores_labels() {
        let n = NodeId::from_index(3);
        let plain = vec![Pattern::new(vec![Phase::strobe(vec![(n, Logic::H)])])];
        let labelled = vec![Pattern::labelled(
            vec![Phase::strobe(vec![(n, Logic::H)])],
            "march w1 @3",
        )];
        assert_eq!(
            stimulus_content_hash(&plain),
            stimulus_content_hash(&labelled)
        );
    }
}
