//! Stimulus types: phases and patterns.
//!
//! The paper's evaluation drives the RAM circuits with *patterns*, each
//! of which "actually represents a sequence of 6 input settings to
//! cycle the clocks" (§5). We model a [`Pattern`] as a list of
//! [`Phase`]s; each phase applies a batch of input changes, settles the
//! network, and optionally *strobes* (compares observed outputs between
//! good and faulty circuits).

use fmossim_netlist::{Logic, NodeId};

/// One input setting: a batch of input changes followed by a settle.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Phase {
    /// Input assignments applied at the start of the phase.
    pub inputs: Vec<(NodeId, Logic)>,
    /// Whether observed outputs are compared (and faults detected) at
    /// the end of this phase.
    pub strobe: bool,
}

impl Phase {
    /// A phase applying `inputs` without strobing.
    #[must_use]
    pub fn apply(inputs: Vec<(NodeId, Logic)>) -> Self {
        Phase {
            inputs,
            strobe: false,
        }
    }

    /// A phase applying `inputs` and strobing the outputs afterwards.
    #[must_use]
    pub fn strobe(inputs: Vec<(NodeId, Logic)>) -> Self {
        Phase {
            inputs,
            strobe: true,
        }
    }
}

/// A test pattern: a fixed sequence of phases (six for the paper's RAM
/// sequences: clock cycling plus an observation strobe).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Pattern {
    /// The phases, applied in order.
    pub phases: Vec<Phase>,
    /// Optional human-readable label ("march w0 @(3,4)" etc.), used in
    /// reports and failure diagnostics.
    pub label: String,
}

impl Pattern {
    /// Creates a pattern from phases with an empty label.
    #[must_use]
    pub fn new(phases: Vec<Phase>) -> Self {
        Pattern {
            phases,
            label: String::new(),
        }
    }

    /// Creates a labelled pattern.
    #[must_use]
    pub fn labelled(phases: Vec<Phase>, label: impl Into<String>) -> Self {
        Pattern {
            phases,
            label: label.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let n = NodeId::from_index(0);
        let p = Phase::apply(vec![(n, Logic::H)]);
        assert!(!p.strobe);
        let p = Phase::strobe(vec![]);
        assert!(p.strobe);
        let pat = Pattern::labelled(vec![p.clone()], "read cell 3");
        assert_eq!(pat.label, "read cell 3");
        assert_eq!(pat.phases.len(), 1);
        assert_eq!(Pattern::new(vec![p]).label, "");
    }
}
