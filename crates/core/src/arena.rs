//! Typed-index arenas and the flat deterministic event queue — the
//! hot-path data layout of the concurrent simulator.
//!
//! Three pieces live here:
//!
//! * [`CircuitId`] — the typed index of a faulty circuit (circuit 0 is
//!   the good machine). Alongside `NodeId` and `FaultId` it completes
//!   the slot-map idiom: every hot-path container is a contiguous array
//!   indexed by one of the three newtypes, never a map keyed by raw
//!   integers.
//! * [`Csr`] — a compressed-sparse-row table replacing `Vec<Vec<T>>`
//!   for the per-node attachment and forced-value tables: one `offsets`
//!   array plus one contiguous `data` array, so a whole simulator
//!   rebuild costs two allocations (amortised to zero under
//!   [`SimArena`] reuse) instead of one per node.
//! * [`EventQueue`] — the flat private-event queue. Triggering appends
//!   `(circuit, node)` pairs in arbitrary order; the drain sorts the
//!   buffer once (`sort_unstable` on the pair, i.e. a stable
//!   `(circuit, node)` total order) and deduplicates, which *is* the
//!   deterministic schedule: circuits settle in ascending id order,
//!   each with its seed nodes sorted and deduplicated. No `BinaryHeap`,
//!   no per-circuit allocation, and the drain order is a pure function
//!   of the scheduled set — `crates/core/tests/proptest_queue.rs`
//!   locks this invariant over random netlists.
//!
//! [`SimArena`] bundles every owned hot-path buffer of a
//! [`ConcurrentSim`](crate::ConcurrentSim) so batch drivers
//! (`fmossim-par`'s `ArenaPool`) can recycle them across
//! record→replay→re-plan rebuilds instead of reallocating per batch.

use crate::overlay::Overrides;
use crate::records::{StateListStore, StateLists};
use fmossim_faults::FaultId;
use fmossim_netlist::{Logic, NodeId};
use fmossim_switch::Engine;

/// The typed index of a simulated circuit: 0 is the good machine,
/// `k + 1` the faulty circuit carrying fault set `k` (so
/// `CircuitId::from_fault(FaultId(k)).get() == k + 1`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct CircuitId(pub u32);

impl CircuitId {
    /// The circuit of fault (set) `f`.
    #[inline]
    #[must_use]
    pub fn from_fault(f: FaultId) -> CircuitId {
        CircuitId(f.0 + 1)
    }

    /// The fault (set) this circuit carries; `None` for the good
    /// machine (circuit 0).
    #[inline]
    #[must_use]
    pub fn fault(self) -> Option<FaultId> {
        self.0.checked_sub(1).map(FaultId)
    }

    /// The raw circuit number.
    #[inline]
    #[must_use]
    pub fn get(self) -> u32 {
        self.0
    }

    /// The circuit number as a container index.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A compressed-sparse-row table: `row(i)` is a contiguous slice, all
/// rows share one `data` allocation. Rebuildable in place, keeping the
/// allocations, from `(row, value)` pairs sorted by row.
#[derive(Clone, Debug, Default)]
pub(crate) struct Csr<T> {
    /// `n_rows + 1` offsets into `data` (empty until first rebuild).
    offsets: Vec<u32>,
    data: Vec<T>,
}

impl<T: Copy> Csr<T> {
    /// Rebuilds the table for `n_rows` rows from pairs sorted by row
    /// index (ties keep their order), reusing both allocations.
    pub(crate) fn rebuild(&mut self, n_rows: usize, pairs: &[(u32, T)]) {
        debug_assert!(pairs.windows(2).all(|w| w[0].0 <= w[1].0), "pairs sorted");
        self.offsets.clear();
        self.data.clear();
        self.offsets.reserve(n_rows + 1);
        self.data.reserve(pairs.len());
        let mut next = 0usize;
        for row in 0..n_rows as u32 {
            self.offsets
                .push(u32::try_from(self.data.len()).expect("csr fits u32"));
            while next < pairs.len() && pairs[next].0 == row {
                self.data.push(pairs[next].1);
                next += 1;
            }
        }
        self.offsets
            .push(u32::try_from(self.data.len()).expect("csr fits u32"));
        debug_assert_eq!(next, pairs.len(), "row indices within n_rows");
    }

    /// The entries of row `i`.
    #[inline]
    pub(crate) fn row(&self, i: usize) -> &[T] {
        &self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// The flat private-event queue: scheduled `(circuit, node)` events,
/// unsorted until drained. See the module docs for the drain-order
/// invariant.
#[derive(Clone, Debug, Default)]
pub(crate) struct EventQueue {
    events: Vec<(CircuitId, NodeId)>,
}

impl EventQueue {
    /// Schedules a private event: `node` changed for circuit `circ`.
    /// Duplicates are fine — the drain deduplicates.
    #[inline]
    pub(crate) fn schedule(&mut self, circ: CircuitId, node: NodeId) {
        self.events.push((circ, node));
    }

    /// Discards everything scheduled (used by the resume path, whose
    /// snapshots are taken at pattern boundaries where the queue is
    /// empty by construction).
    pub(crate) fn clear(&mut self) {
        self.events.clear();
    }

    /// Takes the scheduled events out as one buffer, sorted by
    /// `(circuit, node)` and deduplicated — ascending circuit runs,
    /// each run's nodes sorted and unique. Return the buffer with
    /// [`EventQueue::restore`] so its allocation is reused.
    pub(crate) fn take_sorted(&mut self) -> Vec<(CircuitId, NodeId)> {
        let mut events = std::mem::take(&mut self.events);
        events.sort_unstable();
        events.dedup();
        events
    }

    /// Returns a drained buffer, keeping its capacity for the next
    /// phase.
    pub(crate) fn restore(&mut self, mut buf: Vec<(CircuitId, NodeId)>) {
        buf.clear();
        self.events = buf;
    }
}

/// Every owned hot-path buffer of a
/// [`ConcurrentSim`](crate::ConcurrentSim), detached from the network
/// lifetime so a batch driver can keep it across simulator rebuilds:
/// the switch engine, the divergence-record store, the structural
/// tables and all per-circuit flags and scratch. Constructing a
/// simulator *in* an arena (`ConcurrentSim::new_in` /
/// `ConcurrentSim::resume_in`) recycles each buffer in place;
/// `ConcurrentSim::take_arena` gets the bundle back afterwards.
/// `fmossim-par`'s `ArenaPool` parks arenas between
/// record→replay→re-plan batches.
pub struct SimArena {
    pub(crate) engine: Engine,
    pub(crate) records: StateLists,
    pub(crate) overrides: Vec<Overrides>,
    pub(crate) attach: Csr<u32>,
    pub(crate) forced_at: Csr<(u32, Logic)>,
    pub(crate) dropped: Vec<bool>,
    pub(crate) detected_once: Vec<bool>,
    pub(crate) queue: EventQueue,
    pub(crate) triggered: Vec<u32>,
    pub(crate) strobe_scratch: Vec<(u32, Logic)>,
}

impl SimArena {
    /// Wraps a (possibly recycled) engine into an arena whose other
    /// buffers start empty; the simulator constructors size them.
    #[must_use]
    pub fn with_engine(engine: Engine) -> SimArena {
        SimArena {
            engine,
            records: StateLists::new(0, 0, StateListStore::default()),
            overrides: Vec::new(),
            attach: Csr::default(),
            forced_at: Csr::default(),
            dropped: Vec::new(),
            detected_once: Vec::new(),
            queue: EventQueue::default(),
            triggered: Vec::new(),
            strobe_scratch: Vec::new(),
        }
    }

    /// The engine alone (dropping the other buffers) — interop with
    /// engine-only pooling.
    #[must_use]
    pub fn into_engine(self) -> Engine {
        self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn queue_drains_sorted_and_deduplicated() {
        let mut q = EventQueue::default();
        q.schedule(CircuitId(3), n(5));
        q.schedule(CircuitId(1), n(9));
        q.schedule(CircuitId(3), n(2));
        q.schedule(CircuitId(1), n(9)); // duplicate
        q.schedule(CircuitId(2), n(0));
        let drained = q.take_sorted();
        assert_eq!(
            drained,
            vec![
                (CircuitId(1), n(9)),
                (CircuitId(2), n(0)),
                (CircuitId(3), n(2)),
                (CircuitId(3), n(5)),
            ],
            "ascending circuit runs, nodes sorted and unique within each"
        );
        q.restore(drained);
        let empty = q.take_sorted();
        assert!(empty.is_empty(), "restore clears the buffer");
    }

    #[test]
    fn queue_drain_order_is_schedule_order_independent() {
        let pairs = [
            (CircuitId(2), n(1)),
            (CircuitId(1), n(3)),
            (CircuitId(1), n(1)),
            (CircuitId(2), n(4)),
        ];
        let mut a = EventQueue::default();
        for &(c, node) in &pairs {
            a.schedule(c, node);
        }
        let mut b = EventQueue::default();
        for &(c, node) in pairs.iter().rev() {
            b.schedule(c, node);
            b.schedule(c, node); // and duplicated
        }
        assert_eq!(a.take_sorted(), b.take_sorted());
    }

    #[test]
    fn csr_rows_match_pairs() {
        let mut csr = Csr::default();
        csr.rebuild(4, &[(0, 7u32), (0, 8), (2, 1)]);
        assert_eq!(csr.row(0), &[7, 8]);
        assert_eq!(csr.row(1), &[] as &[u32]);
        assert_eq!(csr.row(2), &[1]);
        assert_eq!(csr.row(3), &[] as &[u32]);
        // Rebuilding reuses the table for a different shape.
        csr.rebuild(2, &[(1, 9)]);
        assert_eq!(csr.row(0), &[] as &[u32]);
        assert_eq!(csr.row(1), &[9]);
    }

    #[test]
    fn circuit_ids_round_trip_fault_ids() {
        let c = CircuitId::from_fault(FaultId(4));
        assert_eq!(c.get(), 5);
        assert_eq!(c.index(), 5);
        assert_eq!(c.fault(), Some(FaultId(4)));
        assert_eq!(CircuitId(0).fault(), None, "good machine carries none");
    }
}
