//! Seeded randomized equivalence testing: concurrent vs. serial on
//! hundreds of random networks, fault lists and pattern sequences.
//!
//! Uses a fixed RNG seed so the exercised cases are deterministic (no
//! flaky CI) while still covering a large space of topologies.
//!
//! ## What is asserted
//!
//! Unit-delay event simulation is order-sensitive on *races*: when a
//! phase changes several inputs at once and the circuit contains
//! charge/feedback races, the settled state legitimately depends on the
//! order in which vicinities are evaluated within a round — and the
//! serial and concurrent simulators schedule those evaluations
//! differently (the original FMOSSIM shares this property). Random
//! networks are full of such races, so this fuzz suite asserts the
//! race-insensitive property: the two simulators (almost — see below)
//! never *definitely contradict* each other (one saying `0` where the
//! other says `1`) on any observed output at any strobe. Disagreements
//! involving `X` are counted and reported but tolerated — they are the
//! signature of a race, not of a missed event (a missed event makes the
//! faulty circuit inherit the good circuit's *definite* value, which
//! this test catches). Exact trace equality is separately asserted on
//! race-free clocked circuits in `equivalence.rs` and on the RAM
//! benchmark circuits in the workspace integration tests.
//!
//! ## Why a small number of definite contradictions is tolerated
//!
//! Charge races on *floating* nodes can legally resolve to opposite
//! definite values, not just to `X`-vs-definite. Worked example (found
//! by this suite): take `p S0 I0 S1` (a p-pass from input `I0` onto
//! `S1`, gated by `S0`), `d Vdd I0 S0` (depletion load making
//! `S0` follow `I0`), and a faulty circuit whose `Gnd–S1` pulldown is
//! stuck open, so `S1` is frequently floating. Flipping `I0` 0→1
//! perturbs both `S0` and `S1` in the same event round. If `S1`'s
//! vicinity is evaluated first (the serial schedule, which follows
//! netlist order), the still-conducting pass transistor charges the
//! floating `S1` to a definite `1` before `S0`'s update turns it off;
//! evaluated the other way round, `S1` stays `0`. The concurrent
//! replay of the same event runs after the good circuit has settled —
//! equivalent to the second schedule — and keeps `0`. Both values are
//! legitimate; neither simulator missed an event. Such coincidences
//! need a floating node, a multi-node race *and* a definite resolution
//! on both sides, so they are rare (~1 fault-strobe in dozens of
//! thousands here). The suite therefore allows a strictly bounded
//! number of contradicting (case, fault) pairs: a genuine triggering
//! bug is systematic and blows the cap immediately (removing the
//! open-channel trigger special case, for instance, yields dozens of
//! contradicting cases).
//!
//! Cases in which any circuit oscillates (X-damping engaged) are
//! skipped entirely: damping sets depend on round counts, which differ
//! by schedule.

use fmossim_core::{
    ConcurrentConfig, ConcurrentSim, Pattern, PatternStats, Phase, SerialConfig, SerialSim,
};
use fmossim_faults::{FaultId, FaultUniverse};
use fmossim_netlist::{Drive, Logic, Network, NodeId, Size, TransistorType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Case {
    net: Network,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
}

fn random_case(rng: &mut StdRng) -> Case {
    let mut net = Network::new();
    net.add_input("Vdd", Logic::H);
    net.add_input("Gnd", Logic::L);
    let num_inputs = rng.gen_range(1..=4);
    let inputs: Vec<NodeId> = (0..num_inputs)
        .map(|i| net.add_input(format!("I{i}"), Logic::L))
        .collect();
    let num_storage = rng.gen_range(2..=8);
    let storage: Vec<NodeId> = (0..num_storage)
        .map(|i| {
            let size = if rng.gen_bool(0.25) {
                Size::S2
            } else {
                Size::S1
            };
            net.add_storage(format!("S{i}"), size)
        })
        .collect();
    let all: Vec<NodeId> = net.node_ids().collect();
    let num_t = rng.gen_range(3..=16);
    for _ in 0..num_t {
        let ttype = match rng.gen_range(0..6) {
            0 => TransistorType::P,
            1 => TransistorType::D,
            _ => TransistorType::N, // bias towards n-type, like real nMOS
        };
        let strength = if ttype == TransistorType::D {
            Drive::D1
        } else {
            Drive::D2
        };
        let gate = all[rng.gen_range(0..all.len())];
        let source = all[rng.gen_range(0..all.len())];
        let drain = storage[rng.gen_range(0..storage.len())];
        if source == drain {
            continue;
        }
        net.add_transistor(ttype, strength, gate, source, drain);
    }
    let outputs = vec![storage[rng.gen_range(0..storage.len())]];
    Case {
        net,
        inputs,
        outputs,
    }
}

fn random_patterns(rng: &mut StdRng, inputs: &[NodeId]) -> Vec<Pattern> {
    let num = rng.gen_range(2..=6);
    (0..num)
        .map(|_| {
            let mut assignments: Vec<(NodeId, Logic)> = Vec::new();
            for &n in inputs {
                if !rng.gen_bool(0.8) {
                    continue;
                }
                let v = match rng.gen_range(0..8) {
                    0 => Logic::X, // occasionally inject X stimulus
                    k if k % 2 == 0 => Logic::L,
                    _ => Logic::H,
                };
                assignments.push((n, v));
            }
            Pattern::new(vec![Phase::strobe(assignments)])
        })
        .collect()
}

/// Returns `Some((x_disagreements, definite_contradictions))` if the
/// case was checked, `None` if skipped (oscillation).
fn check_case(case: &Case, patterns: &[Pattern], seed: u64) -> Option<(usize, Vec<String>)> {
    let universe =
        FaultUniverse::stuck_nodes(&case.net).union(FaultUniverse::stuck_transistors(&case.net));
    // Cap fault count to keep runtime sane; sampling is seeded.
    let universe = universe.sample(12, seed);
    let faults = universe.faults();
    if faults.is_empty() {
        return None;
    }

    let serial = SerialSim::new(
        &case.net,
        SerialConfig {
            stop_at_detection: false,
            ..SerialConfig::default()
        },
    );
    let sreport = serial.run(faults, patterns, &case.outputs);
    if sreport.outcomes.iter().any(|o| o.damped) {
        return None;
    }

    let mut csim = ConcurrentSim::new(
        &case.net,
        faults,
        ConcurrentConfig {
            drop_on_detect: false,
            ..ConcurrentConfig::default()
        },
    );
    let mut contradictions = Vec::new();
    let mut x_disagreements = 0usize;
    for (pi, pattern) in patterns.iter().enumerate() {
        let mut stats = PatternStats::default();
        for (phi, phase) in pattern.phases.iter().enumerate() {
            csim.step_phase(phase, &case.outputs, pi, phi, &mut stats);
        }
        if stats.damped {
            return None; // oscillation: outcomes order-dependent
        }
        for (k, fault) in faults.iter().enumerate() {
            let fid = FaultId(u32::try_from(k).expect("fits"));
            for (oi, &out) in case.outputs.iter().enumerate() {
                let cval = csim.fault_state(fid, out);
                let sval = sreport.outcomes[k].strobes[pi][0][oi];
                if cval == sval {
                    continue;
                }
                if cval.is_definite() && sval.is_definite() {
                    contradictions.push(format!(
                        "seed={seed} pattern={pi} fault={k} ({}) out={}: \
                         concurrent={cval} serial={sval}\nnetlist:\n{}",
                        fault.describe(&case.net),
                        case.net.node(out).name,
                        fmossim_netlist::write_netlist(&case.net)
                    ));
                } else {
                    x_disagreements += 1;
                }
            }
        }
    }
    Some((x_disagreements, contradictions))
}

#[test]
fn fuzz_concurrent_never_contradicts_serial() {
    let mut rng = StdRng::seed_from_u64(0xF0551);
    let mut checked = 0;
    let mut skipped = 0;
    let mut race_artifacts = 0;
    let mut contradicting_cases = 0usize;
    let mut contradiction_log = Vec::new();
    for case_idx in 0..300u64 {
        let case = random_case(&mut rng);
        let patterns = random_patterns(&mut rng, &case.inputs);
        match check_case(&case, &patterns, case_idx) {
            Some((x, contradictions)) => {
                checked += 1;
                race_artifacts += x;
                if !contradictions.is_empty() {
                    contradicting_cases += 1;
                    contradiction_log.extend(contradictions);
                }
            }
            None => skipped += 1,
        }
    }
    eprintln!(
        "fuzz: {checked} cases checked, {skipped} skipped, \
         {race_artifacts} X-vs-definite race artifacts tolerated, \
         {contradicting_cases} definite charge-race cases tolerated"
    );
    // Definite contradictions are legal only for floating-node charge
    // races (see the module docs) — intrinsically rare, both across
    // cases and within one (a scheduler bug confined to a rare
    // topology would still contradict at many fault-strobes of that
    // case, so the *total* is bounded too). A triggering bug is
    // systematic and trips these caps at once.
    assert!(
        contradicting_cases <= 2 && contradiction_log.len() <= 4,
        "{contradicting_cases} cases / {} definite contradictions — \
         too many to be charge races:\n{}",
        contradiction_log.len(),
        contradiction_log.join("\n")
    );
    // The suite must actually exercise a healthy number of cases.
    assert!(
        checked >= 150,
        "only {checked} cases checked ({skipped} skipped) — generator degenerated"
    );
}
