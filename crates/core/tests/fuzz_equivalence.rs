//! Seeded randomized equivalence testing: concurrent vs. serial on
//! hundreds of random networks, fault lists and pattern sequences.
//!
//! Uses a fixed RNG seed so the exercised cases are deterministic (no
//! flaky CI) while still covering a large space of topologies.
//!
//! ## What is asserted
//!
//! Unit-delay event simulation is order-sensitive on *races*: when a
//! phase changes several inputs at once and the circuit contains
//! charge/feedback races, the settled state legitimately depends on the
//! order in which vicinities are evaluated within a round — and the
//! serial and concurrent simulators schedule those evaluations
//! differently (the original FMOSSIM shares this property). Random
//! networks are full of such races, so this fuzz suite asserts the
//! race-insensitive property: the two simulators never *definitely
//! contradict* each other (one saying `0` where the other says `1`) on
//! any observed output at any strobe. Disagreements involving `X` are
//! counted and reported but tolerated — they are the signature of a
//! race, not of a missed event (a missed event makes the faulty circuit
//! inherit the good circuit's *definite* value, which this test
//! catches). Exact trace equality is separately asserted on race-free
//! clocked circuits in `equivalence.rs` and on the RAM benchmark
//! circuits in the workspace integration tests.
//!
//! Cases in which any circuit oscillates (X-damping engaged) are
//! skipped entirely: damping sets depend on round counts, which differ
//! by schedule.

use fmossim_core::{
    ConcurrentConfig, ConcurrentSim, Pattern, PatternStats, Phase, SerialConfig, SerialSim,
};
use fmossim_faults::{FaultId, FaultUniverse};
use fmossim_netlist::{Drive, Logic, Network, NodeId, Size, TransistorType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Case {
    net: Network,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
}

fn random_case(rng: &mut StdRng) -> Case {
    let mut net = Network::new();
    net.add_input("Vdd", Logic::H);
    net.add_input("Gnd", Logic::L);
    let num_inputs = rng.gen_range(1..=4);
    let inputs: Vec<NodeId> = (0..num_inputs)
        .map(|i| net.add_input(format!("I{i}"), Logic::L))
        .collect();
    let num_storage = rng.gen_range(2..=8);
    let storage: Vec<NodeId> = (0..num_storage)
        .map(|i| {
            let size = if rng.gen_bool(0.25) { Size::S2 } else { Size::S1 };
            net.add_storage(format!("S{i}"), size)
        })
        .collect();
    let all: Vec<NodeId> = net.node_ids().collect();
    let num_t = rng.gen_range(3..=16);
    for _ in 0..num_t {
        let ttype = match rng.gen_range(0..6) {
            0 => TransistorType::P,
            1 => TransistorType::D,
            _ => TransistorType::N, // bias towards n-type, like real nMOS
        };
        let strength = if ttype == TransistorType::D {
            Drive::D1
        } else {
            Drive::D2
        };
        let gate = all[rng.gen_range(0..all.len())];
        let source = all[rng.gen_range(0..all.len())];
        let drain = storage[rng.gen_range(0..storage.len())];
        if source == drain {
            continue;
        }
        net.add_transistor(ttype, strength, gate, source, drain);
    }
    let outputs = vec![storage[rng.gen_range(0..storage.len())]];
    Case {
        net,
        inputs,
        outputs,
    }
}

fn random_patterns(rng: &mut StdRng, inputs: &[NodeId]) -> Vec<Pattern> {
    let num = rng.gen_range(2..=6);
    (0..num)
        .map(|_| {
            let mut assignments: Vec<(NodeId, Logic)> = Vec::new();
            for &n in inputs {
                if !rng.gen_bool(0.8) {
                    continue;
                }
                let v = match rng.gen_range(0..8) {
                    0 => Logic::X, // occasionally inject X stimulus
                    k if k % 2 == 0 => Logic::L,
                    _ => Logic::H,
                };
                assignments.push((n, v));
            }
            Pattern::new(vec![Phase::strobe(assignments)])
        })
        .collect()
}

/// Returns `Some(x_disagreements)` if the case was checked (asserting
/// no definite contradictions), `None` if skipped (oscillation).
fn check_case(case: &Case, patterns: &[Pattern], seed: u64) -> Option<usize> {
    let universe = FaultUniverse::stuck_nodes(&case.net)
        .union(FaultUniverse::stuck_transistors(&case.net));
    // Cap fault count to keep runtime sane; sampling is seeded.
    let universe = universe.sample(12, seed);
    let faults = universe.faults();
    if faults.is_empty() {
        return None;
    }

    let serial = SerialSim::new(
        &case.net,
        SerialConfig {
            stop_at_detection: false,
            ..SerialConfig::default()
        },
    );
    let sreport = serial.run(faults, patterns, &case.outputs);
    if sreport.outcomes.iter().any(|o| o.damped) {
        return None;
    }

    let mut csim = ConcurrentSim::new(
        &case.net,
        faults,
        ConcurrentConfig {
            drop_on_detect: false,
            ..ConcurrentConfig::default()
        },
    );
    let mut contradictions = Vec::new();
    let mut x_disagreements = 0usize;
    for (pi, pattern) in patterns.iter().enumerate() {
        let mut stats = PatternStats::default();
        for (phi, phase) in pattern.phases.iter().enumerate() {
            csim.step_phase(phase, &case.outputs, pi, phi, &mut stats);
        }
        if stats.damped {
            return None; // oscillation: outcomes order-dependent
        }
        for (k, fault) in faults.iter().enumerate() {
            let fid = FaultId(u32::try_from(k).expect("fits"));
            for (oi, &out) in case.outputs.iter().enumerate() {
                let cval = csim.fault_state(fid, out);
                let sval = sreport.outcomes[k].strobes[pi][0][oi];
                if cval == sval {
                    continue;
                }
                if cval.is_definite() && sval.is_definite() {
                    contradictions.push(format!(
                        "seed={seed} pattern={pi} fault={k} ({}) out={}: \
                         concurrent={cval} serial={sval}\nnetlist:\n{}",
                        fault.describe(&case.net),
                        case.net.node(out).name,
                        fmossim_netlist::write_netlist(&case.net)
                    ));
                } else {
                    x_disagreements += 1;
                }
            }
        }
    }
    assert!(
        contradictions.is_empty(),
        "definite contradictions between concurrent and serial:\n{}",
        contradictions.join("\n")
    );
    Some(x_disagreements)
}

#[test]
fn fuzz_concurrent_never_contradicts_serial() {
    let mut rng = StdRng::seed_from_u64(0xF0551);
    let mut checked = 0;
    let mut skipped = 0;
    let mut race_artifacts = 0;
    for case_idx in 0..300u64 {
        let case = random_case(&mut rng);
        let patterns = random_patterns(&mut rng, &case.inputs);
        match check_case(&case, &patterns, case_idx) {
            Some(x) => {
                checked += 1;
                race_artifacts += x;
            }
            None => skipped += 1,
        }
    }
    eprintln!(
        "fuzz: {checked} cases checked, {skipped} skipped, \
         {race_artifacts} X-vs-definite race artifacts tolerated"
    );
    // The suite must actually exercise a healthy number of cases.
    assert!(
        checked >= 150,
        "only {checked} cases checked ({skipped} skipped) — generator degenerated"
    );
}
