//! Property tests for the divergence-record store: the two backends
//! (the paper's sorted lists and the ablation hash map) must be
//! observationally identical under arbitrary operation sequences.

use fmossim_core::{StateListStore, StateLists};
use fmossim_netlist::{Logic, NodeId};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Set(u8, u8, Logic),
    Remove(u8, u8),
    DropCircuit(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..16, 1u8..8, 0u8..3).prop_map(|(n, c, v)| Op::Set(
            n,
            c,
            match v {
                0 => Logic::L,
                1 => Logic::H,
                _ => Logic::X,
            }
        )),
        (0u8..16, 1u8..8).prop_map(|(n, c)| Op::Remove(n, c)),
        (1u8..8).prop_map(Op::DropCircuit),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn backends_agree(ops in prop::collection::vec(arb_op(), 0..120)) {
        let mut a = StateLists::new(16, 8, StateListStore::SortedVec);
        let mut b = StateLists::new(16, 8, StateListStore::Hash);
        for op in &ops {
            match *op {
                Op::Set(n, c, v) => {
                    a.set(NodeId::from_index(n as usize), u32::from(c), v);
                    b.set(NodeId::from_index(n as usize), u32::from(c), v);
                }
                Op::Remove(n, c) => {
                    a.remove(NodeId::from_index(n as usize), u32::from(c));
                    b.remove(NodeId::from_index(n as usize), u32::from(c));
                }
                Op::DropCircuit(c) => {
                    a.drop_circuit(u32::from(c));
                    b.drop_circuit(u32::from(c));
                }
            }
            prop_assert_eq!(a.len(), b.len());
        }
        // Full observational equality at the end.
        for n in 0..16 {
            let node = NodeId::from_index(n);
            prop_assert_eq!(a.circuits_at(node), b.circuits_at(node), "node {}", n);
            for c in 1..8u32 {
                prop_assert_eq!(a.get(node, c), b.get(node, c));
            }
        }
        for c in 1..8u32 {
            prop_assert_eq!(a.nodes_of(c), b.nodes_of(c));
        }
    }

    /// `len()` equals the number of live records observable via `get`.
    #[test]
    fn len_is_consistent(ops in prop::collection::vec(arb_op(), 0..80)) {
        let mut s = StateLists::new(16, 8, StateListStore::SortedVec);
        for op in &ops {
            match *op {
                Op::Set(n, c, v) => s.set(NodeId::from_index(n as usize), u32::from(c), v),
                Op::Remove(n, c) => s.remove(NodeId::from_index(n as usize), u32::from(c)),
                Op::DropCircuit(c) => {
                    s.drop_circuit(u32::from(c));
                }
            }
        }
        let mut live = 0;
        for n in 0..16 {
            for c in 1..8u32 {
                if s.get(NodeId::from_index(n), c).is_some() {
                    live += 1;
                }
            }
        }
        prop_assert_eq!(s.len(), live);
    }
}
