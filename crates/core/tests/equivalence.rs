//! The central correctness property of the concurrent algorithm: it
//! must be *observationally equivalent* to serial simulation — every
//! faulty circuit shows the same observed-output trace, and faults are
//! detected at the same pattern, as if each had been simulated alone.

use fmossim_core::{
    ConcurrentConfig, ConcurrentSim, Pattern, PatternStats, Phase, SerialConfig, SerialSim,
};
use fmossim_faults::{Fault, FaultId, FaultUniverse};
use fmossim_netlist::{Drive, Logic, Network, NodeId, Size, TransistorType};

/// Asserts that concurrent (no dropping) and serial (full trace)
/// produce identical observed-output traces for every fault and strobe.
fn assert_equivalent(net: &Network, faults: &[Fault], patterns: &[Pattern], outputs: &[NodeId]) {
    let serial = SerialSim::new(
        net,
        SerialConfig {
            stop_at_detection: false,
            ..SerialConfig::default()
        },
    );
    let sreport = serial.run(faults, patterns, outputs);

    let mut csim = ConcurrentSim::new(
        net,
        faults,
        ConcurrentConfig {
            drop_on_detect: false,
            ..ConcurrentConfig::default()
        },
    );
    for (pi, pattern) in patterns.iter().enumerate() {
        let mut stats = PatternStats::default();
        let mut strobe_idx = 0;
        for (phi, phase) in pattern.phases.iter().enumerate() {
            csim.step_phase(phase, outputs, pi, phi, &mut stats);
            if phase.strobe {
                for (k, fault) in faults.iter().enumerate() {
                    let fid = FaultId(u32::try_from(k).expect("fits"));
                    for (oi, &out) in outputs.iter().enumerate() {
                        let cval = csim.fault_state(fid, out);
                        let sval = sreport.outcomes[k].strobes[pi][strobe_idx][oi];
                        assert_eq!(
                            cval,
                            sval,
                            "fault {k} ({}) pattern {pi} phase {phi} output {}: \
                             concurrent {cval} vs serial {sval}",
                            fault.describe(net),
                            net.node(out).name,
                        );
                    }
                }
                strobe_idx += 1;
            }
        }
    }
}

/// Asserts that with the paper's configuration (drop on detect), the
/// concurrent simulator detects exactly the same faults at the same
/// patterns as the serial baseline.
fn assert_same_detections(
    net: &Network,
    faults: &[Fault],
    patterns: &[Pattern],
    outputs: &[NodeId],
) {
    let serial = SerialSim::new(net, SerialConfig::paper());
    let sreport = serial.run(faults, patterns, outputs);
    let mut csim = ConcurrentSim::new(net, faults, ConcurrentConfig::paper());
    let creport = csim.run(patterns, outputs);

    let mut c_at = vec![None; faults.len()];
    for d in &creport.detections {
        c_at[d.fault.index()] = Some((d.pattern, d.phase));
    }
    for (k, o) in sreport.outcomes.iter().enumerate() {
        let s_at = o.detection.map(|d| (d.pattern, d.phase));
        assert_eq!(
            c_at[k],
            s_at,
            "fault {k} ({}): concurrent detection {:?} vs serial {:?}",
            faults[k].describe(net),
            c_at[k],
            s_at
        );
    }
}

// ---------------------------------------------------------------- //
// Circuits under test.

/// nMOS: two inverters and a NOR feeding a dynamic latch via a pass
/// transistor — exercises ratioed logic, pass gates, charge retention.
fn nmos_block() -> (Network, Vec<NodeId>, NodeId) {
    let mut net = Network::new();
    let vdd = net.add_input("Vdd", Logic::H);
    let gnd = net.add_input("Gnd", Logic::L);
    let a = net.add_input("A", Logic::L);
    let b = net.add_input("B", Logic::L);
    let clk = net.add_input("CLK", Logic::L);

    let nmos_inv = |net: &mut Network, name: &str, inp: NodeId| {
        let out = net.add_storage(name, Size::S1);
        net.add_transistor(TransistorType::D, Drive::D1, out, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, inp, out, gnd);
        out
    };
    let na = nmos_inv(&mut net, "NA", a);
    let nb = nmos_inv(&mut net, "NB", b);
    // NOR(NA, NB)
    let nor = net.add_storage("NOR", Size::S1);
    net.add_transistor(TransistorType::D, Drive::D1, nor, vdd, nor);
    net.add_transistor(TransistorType::N, Drive::D2, na, nor, gnd);
    net.add_transistor(TransistorType::N, Drive::D2, nb, nor, gnd);
    // Latch: pass transistor into a storage node, then output inverter.
    let store = net.add_storage("STORE", Size::S1);
    net.add_transistor(TransistorType::N, Drive::D2, clk, nor, store);
    let q = nmos_inv(&mut net, "Q", store);
    (net, vec![a, b, clk], q)
}

/// Patterns: drive A/B through all combinations, pulsing CLK, strobing
/// after each clock low. Every pattern = 3 phases (like the paper's
/// 6-setting patterns, scaled down).
fn nmos_patterns(inputs: &[NodeId]) -> Vec<Pattern> {
    let (a, b, clk) = (inputs[0], inputs[1], inputs[2]);
    let mut patterns = Vec::new();
    for (va, vb) in [
        (Logic::L, Logic::L),
        (Logic::H, Logic::L),
        (Logic::L, Logic::H),
        (Logic::H, Logic::H),
        (Logic::L, Logic::L),
    ] {
        patterns.push(Pattern::labelled(
            vec![
                Phase::apply(vec![(a, va), (b, vb)]),
                Phase::apply(vec![(clk, Logic::H)]),
                Phase::strobe(vec![(clk, Logic::L)]),
            ],
            format!("A={va} B={vb}"),
        ));
    }
    patterns
}

/// CMOS: 2-input multiplexer from transmission-ish gates plus an output
/// inverter — exercises p-devices and bidirectional selection.
fn cmos_mux() -> (Network, Vec<NodeId>, NodeId) {
    let mut net = Network::new();
    let vdd = net.add_input("Vdd", Logic::H);
    let gnd = net.add_input("Gnd", Logic::L);
    let d0 = net.add_input("D0", Logic::L);
    let d1 = net.add_input("D1", Logic::L);
    let sel = net.add_input("SEL", Logic::L);
    // selb = CMOS inverter of sel.
    let selb = net.add_storage("SELB", Size::S1);
    net.add_transistor(TransistorType::P, Drive::D2, sel, vdd, selb);
    net.add_transistor(TransistorType::N, Drive::D2, sel, selb, gnd);
    // Transmission gates to the common node M.
    let m = net.add_storage("M", Size::S1);
    net.add_transistor(TransistorType::N, Drive::D2, selb, d0, m);
    net.add_transistor(TransistorType::P, Drive::D2, sel, d0, m);
    net.add_transistor(TransistorType::N, Drive::D2, sel, d1, m);
    net.add_transistor(TransistorType::P, Drive::D2, selb, d1, m);
    // Output inverter.
    let q = net.add_storage("Q", Size::S1);
    net.add_transistor(TransistorType::P, Drive::D2, m, vdd, q);
    net.add_transistor(TransistorType::N, Drive::D2, m, q, gnd);
    (net, vec![d0, d1, sel], q)
}

fn mux_patterns(inputs: &[NodeId]) -> Vec<Pattern> {
    let (d0, d1, sel) = (inputs[0], inputs[1], inputs[2]);
    let mut patterns = Vec::new();
    for (v0, v1, vs) in [
        (Logic::L, Logic::H, Logic::L),
        (Logic::H, Logic::L, Logic::L),
        (Logic::H, Logic::L, Logic::H),
        (Logic::L, Logic::H, Logic::H),
        (Logic::H, Logic::H, Logic::L),
        (Logic::L, Logic::L, Logic::H),
    ] {
        patterns.push(Pattern::new(vec![Phase::strobe(vec![
            (d0, v0),
            (d1, v1),
            (sel, vs),
        ])]));
    }
    patterns
}

// ---------------------------------------------------------------- //

#[test]
fn nmos_block_stuck_nodes_equivalent() {
    let (net, inputs, q) = nmos_block();
    let universe = FaultUniverse::stuck_nodes(&net);
    let patterns = nmos_patterns(&inputs);
    assert_equivalent(&net, universe.faults(), &patterns, &[q]);
    assert_same_detections(&net, universe.faults(), &patterns, &[q]);
}

#[test]
fn nmos_block_stuck_transistors_equivalent() {
    let (net, inputs, q) = nmos_block();
    let universe = FaultUniverse::stuck_transistors(&net);
    let patterns = nmos_patterns(&inputs);
    assert_equivalent(&net, universe.faults(), &patterns, &[q]);
    assert_same_detections(&net, universe.faults(), &patterns, &[q]);
}

#[test]
fn cmos_mux_stuck_nodes_equivalent() {
    let (net, inputs, q) = cmos_mux();
    let universe = FaultUniverse::stuck_nodes(&net);
    let patterns = mux_patterns(&inputs);
    assert_equivalent(&net, universe.faults(), &patterns, &[q]);
    assert_same_detections(&net, universe.faults(), &patterns, &[q]);
}

#[test]
fn cmos_mux_stuck_transistors_equivalent() {
    let (net, inputs, q) = cmos_mux();
    let universe = FaultUniverse::stuck_transistors(&net);
    let patterns = mux_patterns(&inputs);
    assert_equivalent(&net, universe.faults(), &patterns, &[q]);
    assert_same_detections(&net, universe.faults(), &patterns, &[q]);
}

#[test]
fn cmos_mux_bridges_equivalent() {
    let (mut net, inputs, q) = cmos_mux();
    let m = net.find_node("M").expect("exists");
    let selb = net.find_node("SELB").expect("exists");
    let gnd = net.find_node("Gnd").expect("exists");
    let faults = vec![
        fmossim_faults::inject::insert_bridge(&mut net, m, selb, "m-selb"),
        fmossim_faults::inject::insert_bridge(&mut net, q, gnd, "q-gnd"),
    ];
    let patterns = mux_patterns(&inputs);
    assert_equivalent(&net, &faults, &patterns, &[q]);
    assert_same_detections(&net, &faults, &patterns, &[q]);
}

#[test]
fn nmos_block_line_opens_equivalent() {
    // Build the block but make the NOR→latch wire breakable.
    let (mut net, inputs, q) = nmos_block();
    let nor = net.find_node("NOR").expect("exists");
    let store = net.find_node("STORE").expect("exists");
    // Note: the pass transistor already connects NOR to STORE; add a
    // breakable segment wire from NA to the NOR pulldown path instead:
    // simplest meaningful open is splitting the latch input, so insert
    // a segment between NOR and a new node feeding the pass gate.
    let _ = store;
    let na = net.find_node("NA").expect("exists");
    let faults = vec![
        fmossim_faults::inject::breakable_segment(&mut net, na, nor, "na-ext"),
        Fault::NodeStuck {
            node: nor,
            value: Logic::L,
        },
    ];
    let patterns = nmos_patterns(&inputs);
    assert_equivalent(&net, &faults, &patterns, &[q]);
    assert_same_detections(&net, &faults, &patterns, &[q]);
}

/// Observing two outputs at once (detection may come from either).
#[test]
fn multiple_outputs_equivalent() {
    let (net, inputs, q) = cmos_mux();
    let m = net.find_node("M").expect("exists");
    let universe = FaultUniverse::stuck_nodes(&net);
    let patterns = mux_patterns(&inputs);
    assert_equivalent(&net, universe.faults(), &patterns, &[q, m]);
    assert_same_detections(&net, universe.faults(), &patterns, &[q, m]);
}
