//! Property tests for the flat event queue's drain-order invariant
//! (see `crates/core/src/arena.rs`): the deterministic schedule —
//! ascending circuit runs, each with sorted, deduplicated seed nodes —
//! is a pure function of the *scheduled set*, never of insertion
//! order, construction history, or recycled-buffer garbage.
//!
//! The queue itself is crate-private, so the properties are asserted
//! through the public simulator API over random netlists:
//!
//! 1. **Replay determinism** — two simulators over the identical
//!    workload agree bit for bit at every pattern boundary: per-pattern
//!    statistics, every circuit's state on every node, detections,
//!    record counts. One side steps patterns by hand, the other uses
//!    [`ConcurrentSim::run`], so the convenience wrapper is locked to
//!    the stepping loop at the same time.
//! 2. **Arena-recycling transparency** — a simulator rebuilt *in* a
//!    dirty arena (taken from a finished run, capacities grown and
//!    buffers full of stale garbage) is indistinguishable from a
//!    freshly allocated one. This is what makes `fmossim-par`'s
//!    `ArenaPool` safe: reuse may never leak one batch's schedule into
//!    the next.
//!
//! Oscillating (X-damped) cases are *not* skipped: damping is only
//! schedule-dependent across *different* schedulers, and both sides of
//! each property run the same one — determinism must hold regardless.

use fmossim_core::{ConcurrentConfig, ConcurrentSim, Pattern, Phase};
use fmossim_faults::{FaultId, FaultUniverse};
use fmossim_netlist::{Drive, Logic, Network, NodeId, Size, TransistorType};
use proptest::prelude::*;

/// A random-netlist blueprint: everything is generated as plain data
/// so proptest can shrink failing cases structurally.
#[derive(Clone, Debug)]
struct CaseSpec {
    num_inputs: usize,
    /// Per-storage-node: use the larger capacitance class?
    storage: Vec<bool>,
    /// `(kind, gate, source, drain)` — indices are reduced modulo the
    /// relevant node-list length when the network is built.
    transistors: Vec<(u8, usize, usize, usize)>,
    /// Per-pattern, per-input drive selector: `0` is `X`, other values
    /// below 6 alternate `L`/`H`, and 6+ leaves the input alone.
    patterns: Vec<Vec<u8>>,
    output: usize,
}

fn arb_case() -> impl Strategy<Value = CaseSpec> {
    (
        1usize..=3,
        prop::collection::vec(any::<bool>(), 2..=6),
        prop::collection::vec((0u8..6, 0usize..64, 0usize..64, 0usize..64), 3..=14),
        prop::collection::vec(prop::collection::vec(0u8..12, 3), 2..=5),
        0usize..64,
    )
        .prop_map(
            |(num_inputs, storage, transistors, patterns, output)| CaseSpec {
                num_inputs,
                storage,
                transistors,
                patterns,
                output,
            },
        )
}

struct Case {
    net: Network,
    patterns: Vec<Pattern>,
    outputs: Vec<NodeId>,
}

/// Deterministically realises a blueprint as a network + workload
/// (same shape as the seeded fuzz generator in `fuzz_equivalence.rs`,
/// biased towards n-type like real nMOS).
fn build(spec: &CaseSpec) -> Case {
    let mut net = Network::new();
    net.add_input("Vdd", Logic::H);
    net.add_input("Gnd", Logic::L);
    let inputs: Vec<NodeId> = (0..spec.num_inputs)
        .map(|i| net.add_input(format!("I{i}"), Logic::L))
        .collect();
    let storage: Vec<NodeId> = spec
        .storage
        .iter()
        .enumerate()
        .map(|(i, &big)| net.add_storage(format!("S{i}"), if big { Size::S2 } else { Size::S1 }))
        .collect();
    let all: Vec<NodeId> = net.node_ids().collect();
    for &(kind, gate, source, drain) in &spec.transistors {
        let ttype = match kind {
            0 => TransistorType::P,
            1 => TransistorType::D,
            _ => TransistorType::N,
        };
        let strength = if ttype == TransistorType::D {
            Drive::D1
        } else {
            Drive::D2
        };
        let gate = all[gate % all.len()];
        let source = all[source % all.len()];
        let drain = storage[drain % storage.len()];
        if source != drain {
            net.add_transistor(ttype, strength, gate, source, drain);
        }
    }
    let patterns = spec
        .patterns
        .iter()
        .map(|row| {
            let assignments: Vec<(NodeId, Logic)> = inputs
                .iter()
                .zip(row)
                .filter_map(|(&n, &v)| {
                    let logic = match v {
                        0 => Logic::X,
                        k if k >= 6 => return None,
                        k if k % 2 == 0 => Logic::L,
                        _ => Logic::H,
                    };
                    Some((n, logic))
                })
                .collect();
            Pattern::new(vec![Phase::strobe(assignments)])
        })
        .collect();
    let outputs = vec![storage[spec.output % storage.len()]];
    Case {
        net,
        patterns,
        outputs,
    }
}

/// Every observable of a simulator at a pattern boundary: each
/// circuit's value on each node. Any schedule divergence whatsoever
/// ends up visible here (or in the counters asserted alongside).
fn fingerprint(sim: &ConcurrentSim, net: &Network, num_faults: usize) -> Vec<Vec<Logic>> {
    (0..num_faults)
        .map(|k| {
            let f = FaultId(u32::try_from(k).expect("fault id fits"));
            net.node_ids().map(|n| sim.fault_state(f, n)).collect()
        })
        .collect()
}

fn config() -> ConcurrentConfig {
    // Keep drop-on-detect active: dropping reclaims records mid-run,
    // which is exactly the kind of history the recycling property must
    // show to be invisible.
    ConcurrentConfig::default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Replay determinism: hand-stepped and `run()`-driven simulators
    /// over the same workload are bit-identical at every boundary.
    #[test]
    fn identical_workloads_replay_bit_identical(spec in arb_case()) {
        let case = build(&spec);
        let universe = FaultUniverse::stuck_nodes(&case.net);
        let faults = universe.faults();
        prop_assume!(!faults.is_empty());

        let mut stepped = ConcurrentSim::new(&case.net, faults, config());
        let mut driven = ConcurrentSim::new(&case.net, faults, config());

        let mut stepped_stats = Vec::new();
        for (pi, p) in case.patterns.iter().enumerate() {
            let mut s = stepped.step_pattern(p, &case.outputs, pi);
            s.seconds = 0.0;
            stepped_stats.push(s);
        }
        let report = driven.run(&case.patterns, &case.outputs);
        let driven_stats: Vec<_> = report
            .patterns
            .iter()
            .map(|s| {
                let mut s = *s;
                s.seconds = 0.0;
                s
            })
            .collect();

        prop_assert_eq!(stepped_stats, driven_stats, "per-pattern stats diverged");
        prop_assert_eq!(stepped.detections(), driven.detections());
        prop_assert_eq!(stepped.live(), driven.live());
        prop_assert_eq!(stepped.record_count(), driven.record_count());
        prop_assert_eq!(
            fingerprint(&stepped, &case.net, faults.len()),
            fingerprint(&driven, &case.net, faults.len()),
            "full circuit state diverged"
        );
    }

    /// Arena recycling is invisible: rebuilding in a dirty arena (from
    /// a finished run over the same random workload) yields the same
    /// schedule, detections, and final state as a fresh allocation.
    #[test]
    fn arena_recycling_never_changes_results(spec in arb_case()) {
        let case = build(&spec);
        let universe = FaultUniverse::stuck_nodes(&case.net);
        let faults = universe.faults();
        prop_assume!(!faults.is_empty());

        // Dirty the arena with a full run's history: grown capacities,
        // dropped circuits, stale records and queue scratch.
        let mut warm = ConcurrentSim::new(&case.net, faults, config());
        let _ = warm.run(&case.patterns, &case.outputs);
        let arena = warm.take_arena();

        let mut recycled = ConcurrentSim::new_in(&case.net, faults, config(), arena);
        let mut fresh = ConcurrentSim::new(&case.net, faults, config());

        let recycled_report = recycled.run(&case.patterns, &case.outputs);
        let fresh_report = fresh.run(&case.patterns, &case.outputs);

        prop_assert_eq!(
            &recycled_report.detections,
            &fresh_report.detections,
            "recycled arena changed the detection set"
        );
        let zeroed = |r: &fmossim_core::RunReport| -> Vec<fmossim_core::PatternStats> {
            r.patterns
                .iter()
                .map(|s| {
                    let mut s = *s;
                    s.seconds = 0.0;
                    s
                })
                .collect()
        };
        prop_assert_eq!(zeroed(&recycled_report), zeroed(&fresh_report));
        prop_assert_eq!(recycled.live(), fresh.live());
        prop_assert_eq!(recycled.record_count(), fresh.record_count());
        prop_assert_eq!(
            fingerprint(&recycled, &case.net, faults.len()),
            fingerprint(&fresh, &case.net, faults.len()),
            "full circuit state diverged after arena reuse"
        );
    }
}
