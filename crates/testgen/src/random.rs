//! Random operation sequences (reproducible), for workloads beyond the
//! paper's marches.

use crate::ops::RamOps;
use fmossim_circuits::Ram;
use fmossim_core::Pattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates `n` random read/write operations over the whole address
/// space, seeded for reproducibility. Roughly half the operations are
/// writes; reads of never-written words are possible (and legitimate —
/// they read `X`).
#[must_use]
pub fn random_ops(ram: &Ram, n: usize, seed: u64) -> Vec<Pattern> {
    let ops = RamOps::new(ram);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let word = rng.gen_range(0..ram.capacity());
            if rng.gen_bool(0.5) {
                ops.write(word, rng.gen_bool(0.5))
            } else {
                ops.read(word)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_and_correct_length() {
        let ram = Ram::new(4, 4);
        let a = random_ops(&ram, 25, 7);
        let b = random_ops(&ram, 25, 7);
        assert_eq!(a.len(), 25);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.label, y.label);
        }
        let c = random_ops(&ram, 25, 8);
        assert!(
            a.iter().zip(c.iter()).any(|(x, y)| x.label != y.label),
            "different seeds give different ops"
        );
    }

    #[test]
    fn mixes_reads_and_writes() {
        let ram = Ram::new(4, 4);
        let ops = random_ops(&ram, 100, 42);
        let writes = ops.iter().filter(|p| p.label.starts_with('w')).count();
        let reads = ops.iter().filter(|p| p.label.starts_with('r')).count();
        assert_eq!(writes + reads, 100);
        assert!(writes > 20 && reads > 20, "{writes} writes, {reads} reads");
    }
}
