//! The paper's test sequences.

use crate::ops::RamOps;
use fmossim_circuits::Ram;
use fmossim_core::Pattern;

/// A named, contiguous section of a test sequence (used for the paper's
/// head/tail analysis: "the first 87 patterns during which all faults
/// in the control and bus logic are detected").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Section {
    /// Section name ("control", "row march", …).
    pub name: String,
    /// Number of patterns in this section.
    pub len: usize,
}

/// An ordered pattern sequence with section bookkeeping.
#[derive(Clone, Debug, Default)]
pub struct TestSequence {
    /// Sequence name ("sequence 1", "sequence 2").
    pub name: String,
    patterns: Vec<Pattern>,
    sections: Vec<Section>,
}

impl TestSequence {
    /// **Sequence 1** of the paper: control/peripheral test, row-select
    /// march, column-select march, then the full 5·N array march.
    /// For an 8×8 RAM this is 7 + 40 + 40 + 320 = 407 patterns; for
    /// 16×16, 7 + 80 + 80 + 1280 = 1447 — both exactly as published.
    #[must_use]
    pub fn full(ram: &Ram) -> Self {
        let mut seq = TestSequence {
            name: "sequence 1".into(),
            ..TestSequence::default()
        };
        seq.push_section("control", control_test(ram));
        seq.push_section("row march", row_march(ram));
        seq.push_section("column march", column_march(ram));
        seq.push_section("array march", array_march(ram));
        seq
    }

    /// **Sequence 2** of the paper: as sequence 1 but with the row and
    /// column marches omitted (327 patterns for RAM64). Faults in the
    /// address decoding and bus control logic are then detected only
    /// slowly, as the array march proceeds — the paper's demonstration
    /// that the *shortest* test sequence need not give the shortest
    /// simulation time.
    #[must_use]
    pub fn march_only(ram: &Ram) -> Self {
        let mut seq = TestSequence {
            name: "sequence 2".into(),
            ..TestSequence::default()
        };
        seq.push_section("control", control_test(ram));
        seq.push_section("array march", array_march(ram));
        seq
    }

    /// The patterns, in order.
    #[must_use]
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Total number of patterns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True iff the sequence is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The section structure.
    #[must_use]
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Number of patterns before the array march begins — the paper's
    /// "head" (87 for RAM64 sequence 1: 7 + 40 + 40).
    #[must_use]
    pub fn head_len(&self) -> usize {
        self.sections
            .iter()
            .take_while(|s| s.name != "array march")
            .map(|s| s.len)
            .sum()
    }

    /// Appends a named section of patterns.
    pub fn push_section(&mut self, name: &str, patterns: Vec<Pattern>) {
        self.sections.push(Section {
            name: name.into(),
            len: patterns.len(),
        });
        self.patterns.extend(patterns);
    }

    /// The name of the section containing pattern index `idx` (useful
    /// for attributing detections: "detected during the column march").
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    #[must_use]
    pub fn section_of(&self, idx: usize) -> &str {
        assert!(idx < self.len(), "pattern index out of range");
        let mut start = 0;
        for s in &self.sections {
            if idx < start + s.len {
                return &s.name;
            }
            start += s.len;
        }
        unreachable!("sections cover all patterns");
    }
}

/// The 7-pattern control/peripheral test: clock initialization, a
/// write/read/write/read toggle of word 0 (exercising the data-in
/// latch, write bus, sense path and output latch in both polarities)
/// and a write/read of the highest word (exercising the opposite
/// decoder corner).
#[must_use]
pub fn control_test(ram: &Ram) -> Vec<Pattern> {
    let ops = RamOps::new(ram);
    let last = ram.capacity() - 1;
    vec![
        ops.idle(),
        ops.write(0, true),
        ops.read(0),
        ops.write(0, false),
        ops.read(0),
        ops.write(last, true),
        ops.read(last),
    ]
}

/// 5-operation march over one representative cell per row (column 0):
/// `w0; r0,w1; r1,w0` per row — 5·R patterns exercising the row select
/// logic.
#[must_use]
pub fn row_march(ram: &Ram) -> Vec<Pattern> {
    let ops = RamOps::new(ram);
    march_over(&ops, (0..ram.rows()).map(|r| ops.word_of(r, 0)).collect())
}

/// 5-operation march over one representative cell per column (row 0):
/// 5·C patterns exercising the column select and bit line logic.
#[must_use]
pub fn column_march(ram: &Ram) -> Vec<Pattern> {
    let ops = RamOps::new(ram);
    march_over(&ops, (0..ram.cols()).map(|c| ops.word_of(0, c)).collect())
}

/// The full 5·N marching test of the memory array (Winegarden &
/// Pannell): `↑(w0); ↑(r0,w1); ↑(r1,w0)`.
#[must_use]
pub fn array_march(ram: &Ram) -> Vec<Pattern> {
    let ops = RamOps::new(ram);
    march_over(&ops, (0..ram.capacity()).collect())
}

/// `↑(w0); ↑(r0,w1); ↑(r1,w0)` over the given words: 5 patterns per
/// word.
fn march_over(ops: &RamOps<'_>, words: Vec<usize>) -> Vec<Pattern> {
    let mut patterns = Vec::with_capacity(5 * words.len());
    for &w in &words {
        patterns.push(ops.write(w, false));
    }
    for &w in &words {
        patterns.push(ops.read(w));
        patterns.push(ops.write(w, true));
    }
    for &w in &words {
        patterns.push(ops.read(w));
        patterns.push(ops.write(w, false));
    }
    patterns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ram64_sequence_1_is_407_patterns() {
        let ram = Ram::new(8, 8);
        let seq = TestSequence::full(&ram);
        assert_eq!(seq.len(), 407, "the paper's sequence-1 length");
        let lens: Vec<usize> = seq.sections().iter().map(|s| s.len).collect();
        assert_eq!(lens, vec![7, 40, 40, 320]);
        assert_eq!(seq.head_len(), 87, "the paper's head length");
    }

    #[test]
    fn ram64_sequence_2_is_327_patterns() {
        let ram = Ram::new(8, 8);
        let seq = TestSequence::march_only(&ram);
        assert_eq!(seq.len(), 327, "the paper's sequence-2 length");
        assert_eq!(seq.head_len(), 7);
    }

    #[test]
    fn ram256_sequence_1_is_1447_patterns() {
        let ram = Ram::new(16, 16);
        let seq = TestSequence::full(&ram);
        assert_eq!(seq.len(), 1447, "the paper's RAM256 sequence length");
        let lens: Vec<usize> = seq.sections().iter().map(|s| s.len).collect();
        assert_eq!(lens, vec![7, 80, 80, 1280]);
    }

    #[test]
    fn march_element_structure() {
        let ram = Ram::new(4, 4);
        let patterns = array_march(&ram);
        assert_eq!(patterns.len(), 5 * 16);
        // First sweep: write 0 everywhere.
        for (i, p) in patterns[..16].iter().enumerate() {
            assert_eq!(p.label, format!("w0@{i}"));
        }
        // Second sweep: read 0, write 1.
        assert_eq!(patterns[16].label, "r@0");
        assert_eq!(patterns[17].label, "w1@0");
        // Third sweep: read 1, write 0.
        assert_eq!(patterns[48].label, "r@0");
        assert_eq!(patterns[49].label, "w0@0");
    }

    #[test]
    fn sequences_share_control_prefix() {
        let ram = Ram::new(4, 4);
        let s1 = TestSequence::full(&ram);
        let s2 = TestSequence::march_only(&ram);
        for i in 0..7 {
            assert_eq!(s1.patterns()[i].label, s2.patterns()[i].label);
        }
        assert!(!s1.is_empty());
    }

    #[test]
    fn row_and_column_marches_touch_distinct_lines() {
        let ram = Ram::new(4, 8);
        assert_eq!(row_march(&ram).len(), 5 * 4);
        assert_eq!(column_march(&ram).len(), 5 * 8);
    }

    #[test]
    fn section_of_attributes_patterns() {
        let ram = Ram::new(4, 4);
        let seq = TestSequence::full(&ram);
        assert_eq!(seq.section_of(0), "control");
        assert_eq!(seq.section_of(6), "control");
        assert_eq!(seq.section_of(7), "row march");
        assert_eq!(seq.section_of(7 + 20), "column march");
        assert_eq!(seq.section_of(seq.len() - 1), "array march");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn section_of_rejects_out_of_range() {
        let ram = Ram::new(4, 4);
        let seq = TestSequence::march_only(&ram);
        let _ = seq.section_of(seq.len());
    }
}
