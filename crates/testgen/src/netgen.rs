//! Seeded random-netlist generation: valid, always-settling nMOS
//! networks of configurable size and fan-in, for workloads no
//! hand-designed benchmark covers.
//!
//! The generator builds **acyclic ratioed logic**: every gate output
//! carries a depletion pull-up and only consumes signals created
//! before it, so the network is a DAG of always-driven nodes — it
//! settles from any input vector without oscillation, and (unlike the
//! adversarial fuzz topologies in `tests/fuzz_equivalence.rs`) has no
//! floating nodes or charge races, which keeps serial, concurrent and
//! sharded backends bit-identical under `DetectionPolicy::DefiniteOnly`.
//! Generation is a pure function of the [`RandomNetSpec`]: the same
//! spec always yields the same netlist, byte for byte.

use fmossim_circuits::Cells;
use fmossim_core::{Pattern, Phase};
use fmossim_netlist::{Logic, Network, NetworkStats, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of one random netlist.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RandomNetSpec {
    /// RNG seed; the sole source of variation.
    pub seed: u64,
    /// Number of primary inputs (`>= 1`).
    pub inputs: usize,
    /// Number of gates (`>= 1`); each gate adds one named output node.
    pub gates: usize,
    /// Maximum gate fan-in (`>= 1`; clamped per gate by how many
    /// signals exist so far).
    pub max_fanin: usize,
}

impl RandomNetSpec {
    /// A small default shape: 4 inputs, 16 gates, fan-in ≤ 3.
    #[must_use]
    pub fn small(seed: u64) -> Self {
        RandomNetSpec {
            seed,
            inputs: 4,
            gates: 16,
            max_fanin: 3,
        }
    }

    /// A wider shape: 8 inputs, 64 gates, fan-in ≤ 4.
    #[must_use]
    pub fn wide(seed: u64) -> Self {
        RandomNetSpec {
            seed,
            inputs: 8,
            gates: 64,
            max_fanin: 4,
        }
    }
}

/// A generated random netlist with its pin bookkeeping.
#[derive(Clone, Debug)]
pub struct RandomNetlist {
    spec: RandomNetSpec,
    net: Network,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
}

/// The per-gate transistor ceiling: the costliest fixed-size cell the
/// generator emits is AND2 (NAND2 = pull-up + 2 series pull-downs = 3
/// devices, plus an inverter = 2, total 5); a NOR-k is `k + 1`
/// devices, so wide fan-ins take over beyond k = 4. Used by the
/// generator's size-bound property test.
#[must_use]
pub fn max_transistors_per_gate(max_fanin: usize) -> usize {
    5.max(max_fanin + 1)
}

impl RandomNetlist {
    /// Generates the netlist for `spec` (deterministic in `spec`).
    ///
    /// # Panics
    ///
    /// Panics if `spec.inputs == 0` or `spec.gates == 0`.
    #[must_use]
    pub fn generate(spec: RandomNetSpec) -> Self {
        assert!(spec.inputs >= 1, "need at least one input");
        assert!(spec.gates >= 1, "need at least one gate");
        let max_fanin = spec.max_fanin.max(1);
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut net = Network::new();
        let mut c = Cells::new(&mut net);
        let inputs: Vec<NodeId> = (0..spec.inputs)
            .map(|i| c.input(&format!("I{i}"), Logic::L))
            .collect();

        // The signal pool every later gate may consume; `consumed`
        // marks pool entries used at least once, so primary outputs
        // (never-consumed gate outputs) fall out at the end.
        let mut pool: Vec<NodeId> = inputs.clone();
        let mut consumed = vec![false; pool.len()];
        for g in 0..spec.gates {
            let fanin = rng.gen_range(1..=max_fanin.min(pool.len()));
            // Distinct picks, newest-biased so the DAG grows deep
            // rather than rooting every gate at the inputs.
            let mut picks: Vec<usize> = Vec::with_capacity(fanin);
            while picks.len() < fanin {
                let i = if rng.gen_bool(0.5) && pool.len() > spec.inputs {
                    rng.gen_range(spec.inputs..pool.len())
                } else {
                    rng.gen_range(0..pool.len())
                };
                if !picks.contains(&i) {
                    picks.push(i);
                }
            }
            let name = format!("G{g}");
            let out = match picks.len() {
                1 => {
                    let a = pool[picks[0]];
                    if rng.gen_bool(0.7) {
                        c.inv(&name, a)
                    } else {
                        c.buf(&name, a)
                    }
                }
                2 if rng.gen_bool(0.4) => {
                    let (a, b) = (pool[picks[0]], pool[picks[1]]);
                    if rng.gen_bool(0.5) {
                        c.nand2(&name, a, b)
                    } else {
                        c.and2(&name, a, b)
                    }
                }
                _ => {
                    let ins: Vec<NodeId> = picks.iter().map(|&i| pool[i]).collect();
                    c.nor(&name, &ins)
                }
            };
            for &i in &picks {
                consumed[i] = true;
            }
            pool.push(out);
            consumed.push(false);
        }

        // Primary outputs: every gate output nothing consumes. At
        // least the last gate qualifies, so the set is never empty.
        let outputs: Vec<NodeId> = pool[spec.inputs..]
            .iter()
            .zip(&consumed[spec.inputs..])
            .filter_map(|(&n, &used)| (!used).then_some(n))
            .collect();
        debug_assert!(!outputs.is_empty(), "the final gate is unconsumed");
        RandomNetlist {
            spec,
            net,
            inputs,
            outputs,
        }
    }

    /// The spec this netlist was generated from.
    #[must_use]
    pub fn spec(&self) -> &RandomNetSpec {
        &self.spec
    }

    /// The generated network.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The primary inputs, in creation order.
    #[must_use]
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// All observable outputs: every gate output no other gate
    /// consumes.
    #[must_use]
    pub fn observed_outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// `n` seeded random single-phase stimulus patterns; every input
    /// is driven to a definite value in every pattern.
    #[must_use]
    pub fn patterns(&self, n: usize, seed: u64) -> Vec<Pattern> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|k| {
                let assignments: Vec<(NodeId, Logic)> = self
                    .inputs
                    .iter()
                    .map(|&i| (i, Logic::from_bool(rng.gen_bool(0.5))))
                    .collect();
                Pattern::labelled(vec![Phase::strobe(assignments)], format!("v{k}"))
            })
            .collect()
    }

    /// Summary statistics.
    #[must_use]
    pub fn stats(&self) -> NetworkStats {
        NetworkStats::of(&self.net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmossim_netlist::write_netlist;
    use fmossim_switch::LogicSim;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Generated networks always settle without oscillation
        /// damping, from reset and from every stimulus vector, and a
        /// settled state is a true fixed point.
        #[test]
        fn generated_networks_settle(
            seed in 0u64..10_000,
            inputs in 1usize..6,
            gates in 1usize..40,
            max_fanin in 1usize..5,
        ) {
            let spec = RandomNetSpec { seed, inputs, gates, max_fanin };
            let rn = RandomNetlist::generate(spec);
            rn.network().validate().expect("generated netlist is valid");
            let mut sim = LogicSim::new(rn.network());
            let report = sim.settle();
            prop_assert!(!report.oscillation_damped, "reset settle oscillated");
            for pattern in rn.patterns(4, seed ^ 0xABCD) {
                for phase in &pattern.phases {
                    for &(n, v) in &phase.inputs {
                        sim.set_input(n, v);
                    }
                    let report = sim.settle();
                    prop_assert!(!report.oscillation_damped, "stimulus settle oscillated");
                }
            }
            let fixed = sim.resettle_all();
            prop_assert!(!fixed.oscillation_damped);
            prop_assert_eq!(fixed.nodes_changed, 0, "settled state is a fixed point");
        }

        /// Node and transistor counts stay inside the bounds the spec
        /// implies, and the output set is non-empty and in range.
        #[test]
        fn generated_counts_match_requested_bounds(
            seed in 0u64..10_000,
            inputs in 1usize..6,
            gates in 1usize..40,
            max_fanin in 1usize..5,
        ) {
            let spec = RandomNetSpec { seed, inputs, gates, max_fanin };
            let rn = RandomNetlist::generate(spec);
            let s = rn.stats();
            prop_assert_eq!(s.inputs, inputs + 2, "primary inputs + the two rails");
            // Every gate adds its named output node plus at most one
            // internal node per cell stage (AND2's NAND mid + inverter
            // chain bound every emitted cell at 3 storage nodes).
            prop_assert!(s.storage >= gates, "one output node per gate");
            prop_assert!(s.storage <= 3 * gates, "cells add at most 2 internal nodes");
            prop_assert!(s.transistors >= 2 * gates, "an inverter is the smallest gate");
            prop_assert!(
                s.transistors <= gates * max_transistors_per_gate(max_fanin),
                "{} transistors from {} gates (fan-in {})", s.transistors, gates, max_fanin
            );
            prop_assert!(!rn.observed_outputs().is_empty());
            prop_assert!(rn.observed_outputs().len() <= gates);
            prop_assert_eq!(rn.inputs().len(), inputs);
        }

        /// Generation is bit-reproducible from the spec, and the seed
        /// actually matters.
        #[test]
        fn generation_is_reproducible_from_the_seed(seed in 0u64..10_000) {
            let spec = RandomNetSpec::small(seed);
            let a = RandomNetlist::generate(spec);
            let b = RandomNetlist::generate(spec);
            prop_assert_eq!(
                write_netlist(a.network()),
                write_netlist(b.network()),
                "same spec, same netlist, byte for byte"
            );
            prop_assert_eq!(a.observed_outputs(), b.observed_outputs());
            let c = RandomNetlist::generate(RandomNetSpec::small(seed ^ 0x5555_5555));
            // Different seeds diverge.
            prop_assert_ne!(write_netlist(a.network()), write_netlist(c.network()));
            // Patterns are reproducible too.
            let pa = a.patterns(6, 7);
            let pb = b.patterns(6, 7);
            for (x, y) in pa.iter().zip(&pb) {
                prop_assert_eq!(&x.phases[0].inputs, &y.phases[0].inputs);
            }
        }
    }

    #[test]
    fn preset_shapes() {
        let small = RandomNetlist::generate(RandomNetSpec::small(1));
        assert_eq!(small.spec().gates, 16);
        let wide = RandomNetlist::generate(RandomNetSpec::wide(1));
        assert!(wide.stats().transistors > small.stats().transistors);
    }
}
