//! Memory operations as six-phase patterns.

use fmossim_circuits::Ram;
use fmossim_core::{Pattern, Phase};
use fmossim_netlist::Logic;

/// Builds six-phase patterns (the paper's "6 input settings to cycle
/// the clocks") for read/write/idle operations on a [`Ram`].
#[derive(Clone, Copy, Debug)]
pub struct RamOps<'r> {
    ram: &'r Ram,
}

impl<'r> RamOps<'r> {
    /// Creates an operation builder for `ram`.
    #[must_use]
    pub fn new(ram: &'r Ram) -> Self {
        RamOps { ram }
    }

    /// The RAM this builder targets.
    #[must_use]
    pub fn ram(&self) -> &'r Ram {
        self.ram
    }

    fn pattern(&self, word: usize, write: Option<bool>, label: String) -> Pattern {
        let io = self.ram.io();
        let mut setup = self.ram.addr_assignments(word);
        setup.push((io.we, Logic::from_bool(write.is_some())));
        if let Some(d) = write {
            setup.push((io.din, Logic::from_bool(d)));
        }
        setup.push((io.phi1, Logic::H));
        Pattern::labelled(
            vec![
                Phase::strobe(setup),                     // 1: pins + PHI1↑
                Phase::strobe(vec![(io.phi1, Logic::L)]), // 2: PHI1↓
                Phase::strobe(vec![(io.phi2, Logic::H)]), // 3: PHI2↑
                Phase::strobe(vec![(io.phi2, Logic::L)]), // 4: PHI2↓
                Phase::strobe(vec![(io.phi3, Logic::H)]), // 5: PHI3↑ (output latch)
                Phase::strobe(vec![(io.phi3, Logic::L)]), // 6: PHI3↓, observe
            ],
            label,
        )
    }

    /// A write of `value` to `word`.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range for the RAM.
    #[must_use]
    pub fn write(&self, word: usize, value: bool) -> Pattern {
        self.pattern(word, Some(value), format!("w{}@{word}", u8::from(value)))
    }

    /// A read of `word`.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range for the RAM.
    #[must_use]
    pub fn read(&self, word: usize) -> Pattern {
        self.pattern(word, None, format!("r@{word}"))
    }

    /// An idle pattern: clocks cycle with WE low at address 0 (used by
    /// the control test to bring the clock generator and latches out of
    /// the all-X reset state).
    #[must_use]
    pub fn idle(&self) -> Pattern {
        let mut p = self.pattern(0, None, "idle".into());
        p.label = "idle".into();
        p
    }

    /// The flat word index of cell `(row, col)`.
    #[must_use]
    pub fn word_of(&self, row: usize, col: usize) -> usize {
        row * self.ram.cols() + col
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_pattern_shape() {
        let ram = Ram::new(4, 4);
        let ops = RamOps::new(&ram);
        let p = ops.write(5, true);
        assert_eq!(p.phases.len(), 6, "six input settings per pattern");
        assert!(
            p.phases.iter().all(|ph| ph.strobe),
            "output monitored continuously"
        );
        assert_eq!(p.label, "w1@5");
        // Setup phase drives address, WE, DIN and PHI1.
        let setup = &p.phases[0].inputs;
        assert_eq!(setup.len(), 4 /* addr */ + 3);
        assert!(setup
            .iter()
            .any(|&(n, v)| n == ram.io().we && v == Logic::H));
        assert!(setup
            .iter()
            .any(|&(n, v)| n == ram.io().phi1 && v == Logic::H));
    }

    #[test]
    fn read_pattern_drives_we_low_without_din() {
        let ram = Ram::new(4, 4);
        let ops = RamOps::new(&ram);
        let p = ops.read(3);
        let setup = &p.phases[0].inputs;
        assert!(setup
            .iter()
            .any(|&(n, v)| n == ram.io().we && v == Logic::L));
        assert!(!setup.iter().any(|&(n, _)| n == ram.io().din));
        assert_eq!(p.label, "r@3");
    }

    #[test]
    fn word_of_is_row_major() {
        let ram = Ram::new(4, 8);
        let ops = RamOps::new(&ram);
        assert_eq!(ops.word_of(0, 0), 0);
        assert_eq!(ops.word_of(1, 0), 8);
        assert_eq!(ops.word_of(3, 7), 31);
    }

    #[test]
    fn clock_cycle_order() {
        let ram = Ram::new(4, 4);
        let p = RamOps::new(&ram).idle();
        let io = ram.io();
        // Phase 1 raises PHI1, phase 2 lowers it, phase 3 raises PHI2…
        assert!(p.phases[0]
            .inputs
            .iter()
            .any(|&(n, v)| n == io.phi1 && v == Logic::H));
        assert_eq!(p.phases[1].inputs, vec![(io.phi1, Logic::L)]);
        assert_eq!(p.phases[2].inputs, vec![(io.phi2, Logic::H)]);
        assert_eq!(p.phases[3].inputs, vec![(io.phi2, Logic::L)]);
        assert_eq!(p.phases[4].inputs, vec![(io.phi3, Logic::H)]);
        assert_eq!(p.phases[5].inputs, vec![(io.phi3, Logic::L)]);
    }
}
