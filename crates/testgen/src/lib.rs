//! Test-pattern generation for the FMOSSIM benchmark circuits.
//!
//! Reconstructs the paper's test sequences (§5):
//!
//! * **Sequence 1** ([`TestSequence::full`]) — "7 patterns to test the
//!   control and peripheral logic, 40 patterns to perform a marching
//!   test of the row select logic, 40 patterns to perform a marching
//!   test of the column select and bit line logic, and 320 patterns to
//!   perform a marching test of the memory array" (counts for the 8×8
//!   RAM64; scale with the array for other sizes — 1447 for RAM256).
//! * **Sequence 2** ([`TestSequence::march_only`]) — "the same as
//!   before, except that the patterns to test the row and column logic
//!   were omitted, leaving a total of 327 patterns".
//!
//! Each pattern is a memory operation expressed as **six input
//! settings** ("each pattern here actually represents a sequence of 6
//! input settings to cycle the clocks"): set pins and raise PHI1,
//! drop PHI1, raise PHI2, drop PHI2, idle, observe. Every phase is a
//! strobe — the output pin is monitored continuously, matching the
//! paper's "any time the simulation of a faulty circuit produces a
//! result on the output data pin different than the good circuit".
//!
//! The marching test is the 5·N march of Winegarden & Pannell's
//! "Paragons for Memory Test" (the paper's reference \[10\]):
//! `↑(w0); ↑(r0,w1); ↑(r1,w0)` — 1 + 2 + 2 operations per cell.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Beyond the RAM sequences, the crate hosts the **benchmark circuit
//! zoo** ([`zoo`]: named, ready-to-run workloads over every
//! `fmossim-circuits` generator) and a **seeded random-netlist
//! generator** ([`RandomNetlist`]: valid, always-settling acyclic
//! logic of configurable size and fan-in) — the workload spread the
//! `evalsuite` benchmark and the differential conformance tests run
//! on.

mod netgen;
mod ops;
mod random;
mod sequence;
pub mod zoo;

pub use netgen::{max_transistors_per_gate, RandomNetSpec, RandomNetlist};
pub use ops::RamOps;
pub use random::random_ops;
pub use sequence::{Section, TestSequence};
pub use zoo::{build_zoo, zoo_names, ZooWorkload, ZOO, ZOO_SEED};
