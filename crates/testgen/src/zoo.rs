//! The benchmark circuit zoo: one named registry of ready-to-run
//! fault-grading workloads (circuit + stimulus + observed outputs),
//! shared by the CLI (`faultsim --circuit`), the evaluation suite
//! (`evalsuite` in `fmossim-bench`), and the differential conformance
//! tests (`tests/zoo_equivalence.rs`).
//!
//! The paper argues FMOSSIM's worth by measuring it across a spread of
//! MOS circuits; the zoo is that spread for this reproduction — the
//! paper's two RAM scales plus structurally different members (pure
//! pipeline, deep feedback, dynamic planes, muxed datapath, register
//! array, adder, and seeded random logic), each with a deliberately
//! different observability profile.

use crate::netgen::{RandomNetSpec, RandomNetlist};
use crate::sequence::TestSequence;
use fmossim_circuits::{
    AluDatapath, Pla, PlaSpec, Ram, RegisterFile, RippleAdder, RippleCounter, ShiftRegister,
    ALU_OPS,
};
use fmossim_core::{Pattern, Phase};
use fmossim_netlist::{Logic, Network, NetworkStats, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The zoo's fixed seed (the paper's publication date), used wherever
/// a member needs seeded randomness — programmings, random netlists,
/// operand streams. Everything derived from it is reproducible.
pub const ZOO_SEED: u64 = 850_715;

/// The zoo members, in registry order. `ZOO[i].0` is the name
/// [`build_zoo`] accepts, `ZOO[i].1` a one-line description.
pub const ZOO: [(&str, &str); 10] = [
    (
        "ram4x4",
        "4x4 3T dynamic RAM, full paper sequence (control + marches)",
    ),
    (
        "ram64",
        "the paper's RAM64 (8x8 3T dynamic RAM), sequence 2 (march only)",
    ),
    (
        "regfile4x4",
        "4-word x 4-bit register file, write/read/overwrite sweep",
    ),
    (
        "adder8",
        "8-bit ripple-carry adder, carry-chain corners + random operands",
    ),
    (
        "shift16",
        "16-stage two-phase dynamic shift register, random bit stream",
    ),
    (
        "counter6",
        "6-bit clocked counter with rippling carry enable, clear/count/hold",
    ),
    (
        "pla6",
        "dynamic NOR-NOR PLA (6 in, 10 products, 4 out), exhaustive inputs",
    ),
    (
        "alu4",
        "4-bit 4-function ALU datapath, all ops x corner + random operands",
    ),
    (
        "rand-small",
        "seeded random acyclic logic (4 in, 16 gates), random vectors",
    ),
    (
        "rand-wide",
        "seeded random acyclic logic (8 in, 64 gates), random vectors",
    ),
];

/// One ready-to-run workload from the zoo.
#[derive(Clone, Debug)]
pub struct ZooWorkload {
    /// Registry name.
    pub name: &'static str,
    /// One-line description (matches [`ZOO`]).
    pub description: &'static str,
    /// The circuit.
    pub net: Network,
    /// The observed output nodes.
    pub outputs: Vec<NodeId>,
    /// The stimulus.
    pub patterns: Vec<Pattern>,
}

impl ZooWorkload {
    /// Summary statistics of the circuit.
    #[must_use]
    pub fn stats(&self) -> NetworkStats {
        NetworkStats::of(&self.net)
    }
}

/// The registry names, in order.
#[must_use]
pub fn zoo_names() -> Vec<&'static str> {
    ZOO.iter().map(|&(name, _)| name).collect()
}

/// Builds the named zoo workload.
///
/// # Errors
///
/// Returns a message listing the registry on an unknown name.
pub fn build_zoo(name: &str) -> Result<ZooWorkload, String> {
    let (reg_name, description) =
        ZOO.iter()
            .find(|&&(n, _)| n == name)
            .copied()
            .ok_or_else(|| {
                format!(
                    "unknown zoo circuit `{name}` (expected one of: {})",
                    zoo_names().join(", ")
                )
            })?;
    let (net, outputs, patterns) = match name {
        "ram4x4" => {
            let ram = Ram::new(4, 4);
            let seq = TestSequence::full(&ram);
            (
                ram.network().clone(),
                ram.observed_outputs().to_vec(),
                seq.patterns().to_vec(),
            )
        }
        "ram64" => {
            let ram = Ram::new(8, 8);
            let seq = TestSequence::march_only(&ram);
            (
                ram.network().clone(),
                ram.observed_outputs().to_vec(),
                seq.patterns().to_vec(),
            )
        }
        "regfile4x4" => {
            let rf = RegisterFile::new(4, 4);
            let patterns = regfile_sequence(&rf);
            (
                rf.network().clone(),
                rf.observed_outputs().to_vec(),
                patterns,
            )
        }
        "adder8" => {
            let adder = RippleAdder::new(8);
            let patterns = adder_sequence(&adder, 24, ZOO_SEED);
            (adder.network().clone(), adder.observed_outputs(), patterns)
        }
        "shift16" => {
            let sr = ShiftRegister::new(16);
            let patterns = shift_sequence(&sr, 2 * sr.stages() + 8, ZOO_SEED);
            (
                sr.network().clone(),
                sr.observed_outputs().to_vec(),
                patterns,
            )
        }
        "counter6" => {
            let counter = RippleCounter::new(6);
            let patterns = counter_sequence(&counter);
            (
                counter.network().clone(),
                counter.observed_outputs().to_vec(),
                patterns,
            )
        }
        "pla6" => {
            let pla = Pla::new(PlaSpec::random(6, 10, 4, ZOO_SEED));
            let patterns = pla_sequence(&pla);
            (
                pla.network().clone(),
                pla.observed_outputs().to_vec(),
                patterns,
            )
        }
        "alu4" => {
            let alu = AluDatapath::new(4);
            let patterns = alu_sequence(&alu, 12, ZOO_SEED);
            (alu.network().clone(), alu.observed_outputs(), patterns)
        }
        "rand-small" => {
            let rn = RandomNetlist::generate(RandomNetSpec::small(ZOO_SEED));
            let patterns = rn.patterns(24, ZOO_SEED ^ 1);
            (
                rn.network().clone(),
                rn.observed_outputs().to_vec(),
                patterns,
            )
        }
        "rand-wide" => {
            let rn = RandomNetlist::generate(RandomNetSpec::wide(ZOO_SEED));
            let patterns = rn.patterns(32, ZOO_SEED ^ 2);
            (
                rn.network().clone(),
                rn.observed_outputs().to_vec(),
                patterns,
            )
        }
        _ => unreachable!("registry names are matched above"),
    };
    Ok(ZooWorkload {
        name: reg_name,
        description,
        net,
        outputs,
        patterns,
    })
}

/// Write/read/overwrite sweep for a register file: write every word
/// ascending, read every word, overwrite descending with the
/// complement, read again — every cell is written and observed in
/// both polarities.
#[must_use]
pub fn regfile_sequence(rf: &RegisterFile) -> Vec<Pattern> {
    let io = rf.io();
    let mask = (1u32 << rf.bits()) - 1;
    let value_of = |w: usize| (w as u32).wrapping_mul(5) & mask;
    let write = |w: usize, value: u32| -> Pattern {
        let mut setup = rf.addr_assignments(w);
        for (b, &d) in io.din.iter().enumerate() {
            setup.push((d, Logic::from_bool((value >> b) & 1 == 1)));
        }
        Pattern::labelled(
            vec![
                Phase::strobe(setup),
                Phase::strobe(vec![(io.wr, Logic::H)]),
                Phase::strobe(vec![(io.wr, Logic::L)]),
            ],
            format!("w{value:x}@{w}"),
        )
    };
    let read = |w: usize| {
        Pattern::labelled(
            vec![Phase::strobe(rf.addr_assignments(w))],
            format!("r@{w}"),
        )
    };
    let mut patterns = Vec::new();
    for w in 0..rf.words() {
        patterns.push(write(w, value_of(w)));
    }
    for w in 0..rf.words() {
        patterns.push(read(w));
    }
    for w in (0..rf.words()).rev() {
        patterns.push(write(w, !value_of(w) & mask));
    }
    for w in 0..rf.words() {
        patterns.push(read(w));
    }
    patterns
}

/// Adder stimulus: the carry-chain corners (all-ones plus one,
/// alternating operands) followed by seeded random operand pairs.
#[must_use]
pub fn adder_sequence(adder: &RippleAdder, random_pairs: usize, seed: u64) -> Vec<Pattern> {
    let bits = adder.bits();
    let max = (1u64 << bits) - 1;
    let alt = {
        let mut v = 0u64;
        for i in (0..bits).step_by(2) {
            v |= 1 << i;
        }
        v
    };
    let mut cases: Vec<(u64, u64, bool)> = vec![
        (0, 0, false),
        (max, 0, true),
        (max, max, true),
        (alt, max & !alt, false),
        (alt, max & !alt, true),
        (1, max, false),
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..random_pairs {
        cases.push((
            rng.gen_range(0..=max),
            rng.gen_range(0..=max),
            rng.gen_bool(0.5),
        ));
    }
    cases
        .into_iter()
        .map(|(a, b, cin)| {
            Pattern::labelled(
                vec![Phase::strobe(adder.operand_assignments(a, b, cin))],
                format!("{a}+{b}+{}", u8::from(cin)),
            )
        })
        .collect()
}

/// Shift-register stimulus: `cycles` full clock cycles carrying a
/// seeded random bit stream (one pattern per cycle).
#[must_use]
pub fn shift_sequence(sr: &ShiftRegister, cycles: usize, seed: u64) -> Vec<Pattern> {
    let io = sr.io();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..cycles)
        .map(|k| {
            let bit = rng.gen_bool(0.5);
            Pattern::labelled(
                vec![
                    Phase::strobe(vec![(io.sin, Logic::from_bool(bit)), (io.phi1, Logic::H)]),
                    Phase::strobe(vec![(io.phi1, Logic::L)]),
                    Phase::strobe(vec![(io.phi2, Logic::H)]),
                    Phase::strobe(vec![(io.phi2, Logic::L)]),
                ],
                format!("s{}@{k}", u8::from(bit)),
            )
        })
        .collect()
}

/// Counter stimulus: clear, count through the first carry into the
/// MSB, hold, clear again, count a little more — every bit toggles
/// and both controls are exercised.
#[must_use]
pub fn counter_sequence(counter: &RippleCounter) -> Vec<Pattern> {
    let io = counter.io();
    let cycle = |en: bool, clr: bool, label: String| {
        Pattern::labelled(
            vec![
                Phase::strobe(vec![
                    (io.en, Logic::from_bool(en)),
                    (io.clr, Logic::from_bool(clr)),
                    (io.phi1, Logic::H),
                ]),
                Phase::strobe(vec![(io.phi1, Logic::L)]),
                Phase::strobe(vec![(io.phi2, Logic::H)]),
                Phase::strobe(vec![(io.phi2, Logic::L)]),
            ],
            label,
        )
    };
    let mut patterns = vec![cycle(false, true, "clr".into())];
    let msb_carry = 1usize << (counter.bits() - 1);
    for k in 0..=msb_carry {
        patterns.push(cycle(true, false, format!("cnt{k}")));
    }
    for k in 0..3 {
        patterns.push(cycle(false, false, format!("hold{k}")));
    }
    patterns.push(cycle(true, true, "clr2".into()));
    for k in 0..5 {
        patterns.push(cycle(true, false, format!("cnt2.{k}")));
    }
    patterns
}

/// PLA stimulus: every input vector, exhaustively, each evaluated on
/// the full three-phase clock cycle.
#[must_use]
pub fn pla_sequence(pla: &Pla) -> Vec<Pattern> {
    let io = pla.io();
    let width = pla.spec().inputs;
    (0..1usize << width)
        .map(|v| {
            let bits: Vec<bool> = (0..width).map(|i| (v >> i) & 1 == 1).collect();
            let mut setup = pla.input_assignments(&bits);
            setup.push((io.phi1, Logic::H));
            Pattern::labelled(
                vec![
                    Phase::strobe(setup),
                    Phase::strobe(vec![(io.phi1, Logic::L)]),
                    Phase::strobe(vec![(io.phi2, Logic::H)]),
                    Phase::strobe(vec![(io.phi2, Logic::L)]),
                    Phase::strobe(vec![(io.phi3, Logic::H)]),
                    Phase::strobe(vec![(io.phi3, Logic::L)]),
                ],
                format!("x{v:02x}"),
            )
        })
        .collect()
}

/// ALU stimulus: for every operation, the operand corners (zeros,
/// all-ones, alternating) plus `random_pairs` seeded random pairs.
#[must_use]
pub fn alu_sequence(alu: &AluDatapath, random_pairs: usize, seed: u64) -> Vec<Pattern> {
    let max = (1u64 << alu.bits()) - 1;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut patterns = Vec::new();
    for op in ALU_OPS {
        let mut cases: Vec<(u64, u64, bool)> = vec![
            (0, 0, false),
            (max, max, true),
            (
                max & 0x5555_5555_5555_5555,
                max & 0xAAAA_AAAA_AAAA_AAAA,
                false,
            ),
        ];
        for _ in 0..random_pairs {
            cases.push((
                rng.gen_range(0..=max),
                rng.gen_range(0..=max),
                rng.gen_bool(0.5),
            ));
        }
        for (a, b, cin) in cases {
            patterns.push(Pattern::labelled(
                vec![Phase::strobe(alu.operand_assignments(op, a, b, cin))],
                format!("{op:?} {a},{b},{}", u8::from(cin)),
            ));
        }
    }
    patterns
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmossim_switch::LogicSim;

    #[test]
    fn every_member_builds_and_is_well_formed() {
        for (name, _) in ZOO {
            let w = build_zoo(name).expect(name);
            assert_eq!(w.name, name);
            w.net.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!w.outputs.is_empty(), "{name}: no observed outputs");
            assert!(!w.patterns.is_empty(), "{name}: no stimulus");
            let stats = w.stats();
            assert!(stats.transistors > 0, "{name}: empty circuit");
            // Outputs are real nodes of this network.
            for &o in &w.outputs {
                assert!(o.index() < stats.nodes, "{name}: foreign output node");
            }
        }
    }

    #[test]
    fn unknown_name_lists_the_registry() {
        let err = build_zoo("nope").unwrap_err();
        for (name, _) in ZOO {
            assert!(err.contains(name), "error should list {name}: {err}");
        }
    }

    #[test]
    fn zoo_members_settle_through_their_stimulus() {
        for (name, _) in ZOO {
            let w = build_zoo(name).expect(name);
            let mut sim = LogicSim::new(&w.net);
            sim.settle();
            for pattern in &w.patterns {
                for phase in &pattern.phases {
                    for &(n, v) in &phase.inputs {
                        sim.set_input(n, v);
                    }
                    let report = sim.settle();
                    assert!(
                        !report.oscillation_damped,
                        "{name}: pattern `{}` oscillated",
                        pattern.label
                    );
                }
            }
        }
    }

    #[test]
    fn building_twice_is_deterministic() {
        for (name, _) in ZOO {
            let a = build_zoo(name).expect(name);
            let b = build_zoo(name).expect(name);
            assert_eq!(
                fmossim_netlist::write_netlist(&a.net),
                fmossim_netlist::write_netlist(&b.net),
                "{name}: circuit not reproducible"
            );
            assert_eq!(a.patterns.len(), b.patterns.len());
            for (x, y) in a.patterns.iter().zip(&b.patterns) {
                assert_eq!(x.label, y.label, "{name}: stimulus not reproducible");
            }
        }
    }

    #[test]
    fn registry_listing_matches_builders() {
        assert_eq!(zoo_names().len(), ZOO.len());
        assert_eq!(zoo_names()[0], "ram4x4");
    }
}
