//! Differential conformance over the benchmark circuit zoo: **every**
//! zoo workload (including the seeded random netlists) graded by
//! **all four** backends at worker counts K ∈ {1, 2, 4} must produce
//! bit-identical canonical detection sets under
//! `DetectionPolicy::DefiniteOnly` — the policy under which detection
//! is provably schedule-independent (definite 0-vs-1 divergences are
//! forced by the logic; see `tests/campaign_api.rs` for the X-timing
//! caveat this sidesteps).
//!
//! This mirrors `tests/adaptive_equivalence.rs`, widened from one RAM
//! to the whole zoo: the conformance bed every circuit added later
//! must pass before `evalsuite` will measure it.

use fmossim::campaign::{
    AdaptiveConfig, Backend, Campaign, CampaignReport, ConcurrentConfig, DetectionPolicy, Jobs,
    ParallelConfig, SerialConfig,
};
use fmossim::faults::FaultUniverse;
use fmossim::testgen::zoo::{build_zoo, ZOO, ZOO_SEED};
use fmossim::testgen::{RandomNetSpec, RandomNetlist};

/// Debug-mode budget: seeded universe sample and pattern cap per
/// workload. Sampling is deterministic, so every backend grades the
/// same faults.
const FAULT_SAMPLE: usize = 16;
const PATTERN_CAP: usize = 48;

/// Canonical detection sequence — the cross-backend invariant.
fn fingerprint(r: &CampaignReport) -> Vec<String> {
    r.detections()
        .iter()
        .map(fmossim::concurrent::Detection::canonical_key)
        .collect()
}

/// serial + concurrent ± packing + {parallel, adaptive} × K ∈ {1, 2, 4},
/// with the packed (bit-parallel) evaluation path joining the matrix on
/// the concurrent and parallel-k2 rows — fingerprint conformance is
/// exactly the invariant the packed lanes must uphold.
fn all_backends() -> Vec<(String, Backend)> {
    let policy = DetectionPolicy::DefiniteOnly;
    let sim = ConcurrentConfig {
        policy,
        ..ConcurrentConfig::paper()
    };
    let packed = ConcurrentConfig {
        packing: true,
        ..sim
    };
    let mut backends: Vec<(String, Backend)> = vec![
        (
            "serial".into(),
            Backend::Serial(SerialConfig {
                policy,
                ..SerialConfig::paper()
            }),
        ),
        ("concurrent".into(), Backend::Concurrent(sim)),
        ("concurrent-packed".into(), Backend::Concurrent(packed)),
    ];
    for k in [1usize, 2, 4] {
        backends.push((
            format!("parallel-k{k}"),
            Backend::Parallel(ParallelConfig {
                jobs: Jobs::Fixed(k),
                sim,
                ..ParallelConfig::default()
            }),
        ));
        backends.push((
            format!("adaptive-k{k}"),
            Backend::Adaptive(AdaptiveConfig {
                jobs: Jobs::Fixed(k),
                sim,
                ..AdaptiveConfig::paper(8)
            }),
        ));
    }
    backends.push((
        "parallel-k2-packed".into(),
        Backend::Parallel(ParallelConfig {
            jobs: Jobs::Fixed(2),
            sim: packed,
            ..ParallelConfig::default()
        }),
    ));
    backends
}

fn assert_conformance(
    name: &str,
    net: &fmossim::netlist::Network,
    universe: &FaultUniverse,
    patterns: &[fmossim::concurrent::Pattern],
    outputs: &[fmossim::netlist::NodeId],
) {
    let mut reference: Option<(String, Vec<String>)> = None;
    for (label, backend) in all_backends() {
        let report = Campaign::new(net)
            .faults(universe.clone())
            .patterns(patterns)
            .outputs(outputs)
            .backend(backend)
            .pattern_limit(PATTERN_CAP)
            .run();
        assert_eq!(report.run.num_faults, universe.len(), "{name}/{label}");
        let fp = fingerprint(&report);
        match &reference {
            None => {
                assert!(
                    report.detected() > 0,
                    "{name}/{label}: workload must detect something"
                );
                reference = Some((label, fp));
            }
            Some((ref_label, ref_fp)) => {
                assert_eq!(
                    &fp, ref_fp,
                    "{name}: {label} diverged from {ref_label} — zoo conformance broken"
                );
            }
        }
    }
}

/// The full matrix over every registry member. One test per member
/// would be nicer granularity, but the registry is data — the assert
/// messages carry the member name instead.
#[test]
fn every_zoo_member_is_backend_invariant() {
    for (name, _) in ZOO {
        let w = build_zoo(name).expect(name);
        let universe = FaultUniverse::stuck_nodes(&w.net).sample(FAULT_SAMPLE, ZOO_SEED);
        assert_conformance(name, &w.net, &universe, &w.patterns, &w.outputs);
    }
}

/// Random netlists beyond the two registry seeds: freshly generated
/// shapes must pass the same matrix (the generator's acyclic,
/// always-driven construction is what makes this hold — see
/// `fmossim_testgen::RandomNetlist`).
#[test]
fn extra_random_netlists_are_backend_invariant() {
    for seed in [7u64, 1_234, 98_765] {
        let rn = RandomNetlist::generate(RandomNetSpec {
            seed,
            inputs: 5,
            gates: 24,
            max_fanin: 3,
        });
        let universe = FaultUniverse::stuck_nodes(rn.network()).sample(FAULT_SAMPLE, seed);
        let patterns = rn.patterns(12, seed ^ 0xF00D);
        assert_conformance(
            &format!("randnet-{seed}"),
            rn.network(),
            &universe,
            &patterns,
            rn.observed_outputs(),
        );
    }
}

/// The stuck-transistor class on the combinational members (the
/// paper's §5 validation class; the sequential members' transistor
/// faults can enable charge races, which the stuck-node matrix above
/// deliberately avoids).
#[test]
fn combinational_members_conform_on_transistor_faults() {
    for name in ["adder8", "alu4", "rand-small"] {
        let w = build_zoo(name).expect(name);
        let universe = FaultUniverse::stuck_transistors(&w.net)
            .without_redundant(&w.net)
            .sample(FAULT_SAMPLE, ZOO_SEED);
        assert_conformance(name, &w.net, &universe, &w.patterns, &w.outputs);
    }
}
