//! Lane equivalence: the bit-parallel packed evaluation path
//! (`ConcurrentConfig::packing`) must be **bit-identical** to the
//! scalar concurrent path — same detection sequence, same live set,
//! same divergence-record population, same per-fault node states after
//! every run. The packed engine promises each lane settles exactly as
//! its scalar schedule would (per-lane pending/solved/damping masks,
//! structure-divergence eviction), so the comparison is exact even on
//! pathological circuits — no race or oscillation filtering needed,
//! both sides run the *same* per-lane algorithm.
//!
//! A property test over random small netlists (offline proptest shim)
//! covers charge-sharing, ratioed-fight and oscillating topologies the
//! zoo fixtures do not; `tests/zoo_equivalence.rs` carries the packed
//! backends through the cross-backend campaign matrix.

use fmossim::concurrent::{ConcurrentConfig, ConcurrentSim, Pattern, Phase, RunReport};
use fmossim::faults::{FaultId, FaultUniverse};
use fmossim::netlist::{Drive, Logic, Network, NodeId, Size, TransistorType};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs the same workload scalar and packed and asserts every
/// observable of the simulation — detections, drops, live counts,
/// record lists, and the full per-fault state overlay — is identical.
/// Work counters (`faulty_groups`, `circuit_settles`) are excluded:
/// the packed path legitimately counts solves differently.
fn assert_lane_equivalence(
    net: &Network,
    universe: &FaultUniverse,
    patterns: &[Pattern],
    outputs: &[NodeId],
) -> (RunReport, RunReport) {
    let scalar_cfg = ConcurrentConfig::paper();
    let packed_cfg = ConcurrentConfig {
        packing: true,
        ..scalar_cfg
    };
    let mut scalar = ConcurrentSim::new(net, universe.faults(), scalar_cfg);
    let s_rep = scalar.run(patterns, outputs);
    let mut packed = ConcurrentSim::new(net, universe.faults(), packed_cfg);
    let p_rep = packed.run(patterns, outputs);

    assert_eq!(p_rep.detections, s_rep.detections, "detections diverged");
    assert_eq!(packed.live(), scalar.live(), "live sets diverged");
    assert_eq!(
        packed.record_count(),
        scalar.record_count(),
        "record population diverged"
    );
    for k in 0..u32::try_from(universe.len()).expect("universe fits") {
        let f = FaultId(k);
        for n in net.node_ids() {
            assert_eq!(
                packed.fault_state(f, n),
                scalar.fault_state(f, n),
                "fault {k} diverged at node {n:?}"
            );
        }
    }
    for (p, s) in p_rep.patterns.iter().zip(&s_rep.patterns) {
        assert_eq!(
            (p.detected, p.live_before, p.good_groups, p.damped),
            (s.detected, s.live_before, s.good_groups, s.damped),
            "pattern counters diverged"
        );
    }
    (s_rep, p_rep)
}

// ---------------------------------------------------------------------
// Deterministic fixtures: the shapes packing targets.
// ---------------------------------------------------------------------

#[test]
fn ram_lanes_match_scalar_bit_for_bit() {
    use fmossim::circuits::Ram;
    use fmossim::testgen::TestSequence;
    let ram = Ram::new(4, 4);
    let universe = FaultUniverse::stuck_nodes(ram.network());
    let seq = TestSequence::march_only(&ram);
    let (s_rep, _) = assert_lane_equivalence(
        ram.network(),
        &universe,
        seq.patterns(),
        ram.observed_outputs(),
    );
    assert!(
        s_rep.detections.len() > universe.len() / 2,
        "workload must exercise the fault machinery"
    );
}

#[test]
fn transistor_fault_lanes_match_scalar() {
    use fmossim::circuits::RippleAdder;
    let adder = RippleAdder::new(2);
    let universe =
        FaultUniverse::stuck_transistors(adder.network()).without_redundant(adder.network());
    let patterns: Vec<Pattern> = (0..4u64)
        .map(|a| {
            Pattern::new(vec![Phase::strobe(adder.operand_assignments(
                a,
                3 - a,
                false,
            ))])
        })
        .collect();
    assert_lane_equivalence(
        adder.network(),
        &universe,
        &patterns,
        &adder.observed_outputs(),
    );
}

// ---------------------------------------------------------------------
// Property test: random small netlists and fault universes.
// ---------------------------------------------------------------------

struct RandomCase {
    net: Network,
    outputs: Vec<NodeId>,
    patterns: Vec<Pattern>,
}

/// Random switch network + stimulus in the style of the replay
/// equivalence suite: nMOS-biased transistors over a handful of
/// storage nodes, occasional depletion loads and X stimulus — dense
/// enough that faulty circuits overlap, which is the packed lanes'
/// interesting regime.
fn random_case(seed: u64) -> RandomCase {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Network::new();
    net.add_input("Vdd", Logic::H);
    net.add_input("Gnd", Logic::L);
    let num_inputs = rng.gen_range(1..=3);
    let inputs: Vec<NodeId> = (0..num_inputs)
        .map(|i| net.add_input(format!("I{i}"), Logic::L))
        .collect();
    let num_storage = rng.gen_range(2..=6);
    let storage: Vec<NodeId> = (0..num_storage)
        .map(|i| {
            let size = if rng.gen_bool(0.25) {
                Size::S2
            } else {
                Size::S1
            };
            net.add_storage(format!("S{i}"), size)
        })
        .collect();
    let all: Vec<NodeId> = net.node_ids().collect();
    for _ in 0..rng.gen_range(3..=12) {
        let ttype = match rng.gen_range(0..6) {
            0 => TransistorType::P,
            1 => TransistorType::D,
            _ => TransistorType::N,
        };
        let strength = if ttype == TransistorType::D {
            Drive::D1
        } else {
            Drive::D2
        };
        let gate = all[rng.gen_range(0..all.len())];
        let source = all[rng.gen_range(0..all.len())];
        let drain = storage[rng.gen_range(0..storage.len())];
        if source == drain {
            continue;
        }
        net.add_transistor(ttype, strength, gate, source, drain);
    }
    let outputs = vec![storage[rng.gen_range(0..storage.len())]];
    let num_patterns = rng.gen_range(2..=5);
    let mut patterns = Vec::with_capacity(num_patterns);
    for _ in 0..num_patterns {
        let mut assignments: Vec<(NodeId, Logic)> = Vec::new();
        for &n in &inputs {
            if !rng.gen_bool(0.8) {
                continue;
            }
            let v = match rng.gen_range(0..8) {
                0 => Logic::X,
                k if k % 2 == 0 => Logic::L,
                _ => Logic::H,
            };
            assignments.push((n, v));
        }
        patterns.push(Pattern::new(vec![Phase::strobe(assignments)]));
    }
    RandomCase {
        net,
        outputs,
        patterns,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The property: on a random netlist with a random mixed
    /// stuck-node + stuck-transistor universe, the packed and scalar
    /// concurrent simulators agree on every detection, every record,
    /// and every per-fault node state.
    #[test]
    fn random_netlists_settle_bit_identically(seed in 0u64..10_000) {
        let case = random_case(seed);
        let universe = FaultUniverse::stuck_nodes(&case.net)
            .union(FaultUniverse::stuck_transistors(&case.net))
            .sample(12, seed);
        prop_assume!(!universe.faults().is_empty());
        assert_lane_equivalence(&case.net, &universe, &case.patterns, &case.outputs);
    }
}
