//! Cooperative cancellation, per backend: the cancel token stops every
//! built-in backend at its work-item boundary (pattern / fault / shard
//! / batch), the report says so (`cancelled` + `StopReason::Cancelled`)
//! and still covers the work done before the stop, and the JSON
//! artifact round-trips the flag.

use fmossim::campaign::{
    AdaptiveConfig, Backend, Campaign, CampaignReport, ConcurrentConfig, Jobs, ParallelConfig,
    SerialConfig, SimEvent, StopReason,
};
use fmossim::circuits::Ram;
use fmossim::faults::FaultUniverse;
use fmossim::testgen::TestSequence;
use std::sync::atomic::Ordering;

fn workload() -> (Ram, TestSequence) {
    let ram = Ram::new(4, 4);
    let seq = TestSequence::full(&ram);
    (ram, seq)
}

fn campaign<'n, 'o>(ram: &'n Ram, seq: &TestSequence, backend: Backend) -> Campaign<'n, 'o> {
    Campaign::new(ram.network())
        .faults(FaultUniverse::stuck_nodes(ram.network()))
        .patterns(seq.patterns())
        .outputs(ram.observed_outputs())
        .backend(backend)
}

fn all_backends() -> [Backend; 4] {
    [
        Backend::Serial(SerialConfig::paper()),
        Backend::Concurrent(ConcurrentConfig::paper()),
        Backend::Parallel(ParallelConfig::paper(2)),
        Backend::Adaptive(AdaptiveConfig::paper(4)),
    ]
}

/// A token set before `run()` stops every backend at its *first*
/// boundary check; the report is still complete and parseable.
#[test]
fn pre_set_token_cancels_every_backend() {
    let (ram, seq) = workload();
    for backend in all_backends() {
        let c = campaign(&ram, &seq, backend);
        let token = c.cancel_token();
        token.store(true, Ordering::Relaxed);
        let report = c.run();
        assert!(report.cancelled, "{}", report.backend);
        assert_eq!(report.stop, StopReason::Cancelled, "{}", report.backend);
        // Round-trip the artifact with the flag set.
        let back = CampaignReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(back, report);
    }
}

/// Concurrent backend: cancelling after the first `PatternDone` stops
/// between patterns — exactly one pattern is simulated.
#[test]
fn concurrent_cancels_between_patterns() {
    let (ram, seq) = workload();
    let total = seq.patterns().len();
    assert!(total > 1);
    let c = campaign(&ram, &seq, Backend::Concurrent(ConcurrentConfig::paper()));
    let token = c.cancel_token();
    let report = c
        .on_event(move |e| {
            if matches!(e, SimEvent::PatternDone { .. }) {
                token.store(true, Ordering::Relaxed);
            }
        })
        .run();
    assert!(report.cancelled);
    assert_eq!(report.stop, StopReason::Cancelled);
    assert_eq!(report.run.patterns.len(), 1, "stopped after one pattern");
    assert_eq!(report.patterns_total, total, "offered patterns unchanged");
}

/// Serial backend: cancelling on the first detection stops between
/// faults — fewer faults are graded than the universe holds.
#[test]
fn serial_cancels_between_faults() {
    let (ram, seq) = workload();
    let c = campaign(&ram, &seq, Backend::Serial(SerialConfig::paper()));
    let full = campaign(&ram, &seq, Backend::Serial(SerialConfig::paper())).run();
    assert!(full.detected() > 1, "workload detects more than one fault");
    let token = c.cancel_token();
    let report = c
        .on_event(move |e| {
            if matches!(e, SimEvent::Detected { .. }) {
                token.store(true, Ordering::Relaxed);
            }
        })
        .run();
    assert!(report.cancelled);
    assert_eq!(report.stop, StopReason::Cancelled);
    assert!(
        report.detected() < full.detected(),
        "stopped before grading the whole universe ({} vs {})",
        report.detected(),
        full.detected()
    );
}

/// Parallel backend: cancelling on the first `ShardDone` stops the
/// shard queue — with one worker and many shards, exactly one shard
/// completes.
#[test]
fn parallel_cancels_between_shards() {
    let (ram, seq) = workload();
    let universe = FaultUniverse::stuck_nodes(ram.network());
    let n_shards = 8.min(universe.len());
    assert!(n_shards > 1);
    let config = ParallelConfig {
        shards: Some(n_shards),
        jobs: Jobs::Fixed(1),
        ..ParallelConfig::paper(1)
    };
    let c = campaign(&ram, &seq, Backend::Parallel(config));
    let token = c.cancel_token();
    let mut shards_done = 0usize;
    let report = {
        let counter = &mut shards_done;
        c.on_event(move |e| {
            if matches!(e, SimEvent::ShardDone { .. }) {
                *counter += 1;
                token.store(true, Ordering::Relaxed);
            }
        })
        .run()
    };
    assert!(report.cancelled);
    assert_eq!(report.stop, StopReason::Cancelled);
    assert_eq!(shards_done, 1, "queue stopped after the first shard");
}

/// Adaptive backend: cancelling on the first `BatchDone` stops between
/// batches — one batch of patterns is simulated, no more.
#[test]
fn adaptive_cancels_between_batches() {
    let (ram, seq) = workload();
    let batch = 4usize;
    let total = seq.patterns().len();
    assert!(total > batch);
    let c = campaign(&ram, &seq, Backend::Adaptive(AdaptiveConfig::paper(batch)));
    let token = c.cancel_token();
    let report = c
        .on_event(move |e| {
            if matches!(e, SimEvent::BatchDone { .. }) {
                token.store(true, Ordering::Relaxed);
            }
        })
        .run();
    assert!(report.cancelled);
    assert_eq!(report.stop, StopReason::Cancelled);
    assert_eq!(report.batches.len(), 1, "stopped after one batch");
    assert_eq!(report.run.patterns.len(), batch);
}
