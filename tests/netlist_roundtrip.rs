//! Cross-crate netlist round-tripping: generated circuits survive the
//! text format, and the parsed copies behave identically under
//! simulation.

use fmossim::circuits::{Ram, RegisterFile};
use fmossim::netlist::{parse_netlist, write_netlist};
use fmossim::sim::LogicSim;
use fmossim::testgen::TestSequence;

#[test]
fn ram_roundtrips_structurally() {
    let ram = Ram::new(4, 4);
    let text = write_netlist(ram.network());
    let back = parse_netlist(&text).expect("canonical form parses");
    assert_eq!(back.num_nodes(), ram.network().num_nodes());
    assert_eq!(back.num_transistors(), ram.network().num_transistors());
    for id in ram.network().node_ids() {
        assert_eq!(ram.network().node(id), back.node(id));
    }
    for id in ram.network().transistor_ids() {
        assert_eq!(ram.network().transistor(id), back.transistor(id));
    }
    back.validate().expect("parsed RAM is well-formed");
}

#[test]
fn parsed_ram_simulates_identically() {
    let ram = Ram::new(4, 4);
    let text = write_netlist(ram.network());
    let back = parse_netlist(&text).expect("parses");

    let seq = TestSequence::full(&ram);
    let mut a = LogicSim::new(ram.network());
    let mut b = LogicSim::new(&back);
    a.settle();
    b.settle();
    // Node ids are identical (same creation order), so inputs can be
    // driven by id on both.
    for pattern in seq.patterns().iter().take(60) {
        for phase in &pattern.phases {
            for &(n, v) in &phase.inputs {
                a.set_input(n, v);
                b.set_input(n, v);
            }
            a.settle();
            b.settle();
        }
        assert_eq!(a.states(), b.states(), "after pattern '{}'", pattern.label);
    }
}

#[test]
fn register_file_roundtrips() {
    let rf = RegisterFile::new(4, 4);
    let text = write_netlist(rf.network());
    let back = parse_netlist(&text).expect("parses");
    assert_eq!(back.num_transistors(), rf.network().num_transistors());
    back.validate().expect("well-formed");
}

#[test]
fn faulted_ram_roundtrips_with_fault_devices() {
    use fmossim::faults::inject;
    let mut ram = Ram::new(4, 4);
    let pairs = ram.adjacent_bitline_pairs();
    for (i, (a, b)) in pairs.into_iter().enumerate() {
        inject::insert_bridge(ram.network_mut(), a, b, &format!("bl{i}"));
    }
    let text = write_netlist(ram.network());
    assert!(
        text.contains("#fault.bridge.bl0"),
        "control nodes serialised"
    );
    assert!(text.contains("strength 7"), "fault strength serialised");
    let back = parse_netlist(&text).expect("parses");
    assert_eq!(back.num_transistors(), ram.network().num_transistors());
}
