//! Record/replay equivalence: a parallel campaign that replays the
//! recorded good-machine tape must be **bit-identical** to one that
//! re-settles the good circuit in every shard — same detection
//! sequence (canonical order), same per-pattern counters, same
//! coverage — across shard counts, shard strategies, and the benchmark
//! circuits. A property test over random small netlists (offline
//! proptest shim) covers topologies the fixtures do not.

use fmossim::campaign::{Backend, Campaign, CampaignReport};
use fmossim::circuits::{Ram, RippleAdder};
use fmossim::concurrent::{ConcurrentConfig, ConcurrentSim, GoodTape, Pattern, Phase};
use fmossim::faults::FaultUniverse;
use fmossim::netlist::{Drive, Logic, Network, NodeId, Size, TransistorType};
use fmossim::par::{Jobs, ParallelConfig, ParallelSim, ShardStrategy};
use fmossim::testgen::TestSequence;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 850_715;

/// Everything of a report that must not depend on the execution
/// strategy: detections in their canonical emitted order, the fault
/// count, and the per-pattern counters (everything but wall time).
fn fingerprint(r: &CampaignReport) -> (Vec<String>, usize, Vec<String>) {
    let detections = r
        .detections()
        .iter()
        .map(fmossim::concurrent::Detection::canonical_key)
        .collect();
    let patterns = r
        .run
        .patterns
        .iter()
        .map(|p| {
            format!(
                "d{} l{} g{} f{} c{} o{}",
                p.detected,
                p.live_before,
                p.good_groups,
                p.faulty_groups,
                p.circuit_settles,
                p.damped
            )
        })
        .collect();
    (detections, r.run.num_faults, patterns)
}

fn run_campaign(
    net: &Network,
    universe: &FaultUniverse,
    patterns: &[Pattern],
    outputs: &[NodeId],
    jobs: usize,
    strategy: ShardStrategy,
    replay: bool,
) -> CampaignReport {
    Campaign::new(net)
        .faults(universe.clone())
        .patterns(patterns)
        .outputs(outputs)
        .backend(Backend::Parallel(ParallelConfig {
            jobs: Jobs::Fixed(jobs),
            strategy,
            sim: ConcurrentConfig::paper(),
            ..ParallelConfig::default()
        }))
        .reuse_good_tape(replay)
        .run()
}

/// The property: for K ∈ {1, 2, 4} × all three strategies, the
/// replay-backed campaign equals the recompute campaign bit for bit.
fn assert_replay_equivalence(
    net: &Network,
    universe: &FaultUniverse,
    patterns: &[Pattern],
    outputs: &[NodeId],
) {
    for k in [1usize, 2, 4] {
        for strategy in ShardStrategy::ALL {
            let recompute = run_campaign(net, universe, patterns, outputs, k, strategy, false);
            let replay = run_campaign(net, universe, patterns, outputs, k, strategy, true);
            assert_eq!(
                fingerprint(&replay),
                fingerprint(&recompute),
                "K={k} strategy={strategy}: replay diverged from recompute"
            );
            assert_eq!(
                recompute.tape_record_seconds, None,
                "recompute mode must not record a tape"
            );
            let shards = replay.shards.expect("parallel backend reports shards");
            assert_eq!(
                replay.tape_record_seconds.is_some(),
                shards > 1,
                "K={k} strategy={strategy}: tape recorded iff it amortises"
            );
        }
    }
}

#[test]
fn ram4x4_replay_is_bit_identical() {
    let ram = Ram::new(4, 4);
    let universe = FaultUniverse::stuck_nodes(ram.network());
    let seq = TestSequence::full(&ram);
    assert_replay_equivalence(
        ram.network(),
        &universe,
        seq.patterns(),
        ram.observed_outputs(),
    );
}

#[test]
fn ram64_replay_is_bit_identical() {
    // The paper's RAM64 on its march sequence; the universe is sampled
    // to keep the 18-run debug-mode sweep quick (sampling is seeded —
    // same faults every run).
    let ram = Ram::new(8, 8);
    let universe = FaultUniverse::stuck_nodes(ram.network()).sample(48, SEED);
    let seq = TestSequence::march_only(&ram);
    let reference = run_campaign(
        ram.network(),
        &universe,
        seq.patterns(),
        ram.observed_outputs(),
        2,
        ShardStrategy::default(),
        true,
    );
    assert!(reference.detected() > 0, "workload must detect something");
    assert_replay_equivalence(
        ram.network(),
        &universe,
        seq.patterns(),
        ram.observed_outputs(),
    );
}

#[test]
fn adder_replay_is_bit_identical() {
    let adder = RippleAdder::new(3);
    let universe = FaultUniverse::stuck_nodes(adder.network()).union(
        FaultUniverse::stuck_transistors(adder.network()).without_redundant(adder.network()),
    );
    let cases: Vec<(u64, u64, bool)> = (0..8)
        .flat_map(|a| [(a, 7 - a, false), (a, a ^ 0b101, true)])
        .collect();
    let patterns: Vec<Pattern> = cases
        .iter()
        .map(|&(a, b, cin)| {
            Pattern::labelled(
                vec![Phase::strobe(adder.operand_assignments(a, b, cin))],
                format!("{a}+{b}+{}", u8::from(cin)),
            )
        })
        .collect();
    assert_replay_equivalence(
        adder.network(),
        &universe,
        &patterns,
        &adder.observed_outputs(),
    );
}

// ---------------------------------------------------------------------
// Property test: random small netlists.
// ---------------------------------------------------------------------

struct RandomCase {
    net: Network,
    outputs: Vec<NodeId>,
    patterns: Vec<Pattern>,
}

/// Random switch network + stimulus, in the style of the core fuzz
/// suite: nMOS-biased transistors over a handful of storage nodes,
/// with occasional X stimulus. Replay equality needs no race or
/// oscillation filtering — both sides run the *same* algorithm, so the
/// comparison is exact even on pathological circuits.
fn random_case(seed: u64) -> RandomCase {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Network::new();
    net.add_input("Vdd", Logic::H);
    net.add_input("Gnd", Logic::L);
    let num_inputs = rng.gen_range(1..=3);
    let inputs: Vec<NodeId> = (0..num_inputs)
        .map(|i| net.add_input(format!("I{i}"), Logic::L))
        .collect();
    let num_storage = rng.gen_range(2..=6);
    let storage: Vec<NodeId> = (0..num_storage)
        .map(|i| {
            let size = if rng.gen_bool(0.25) {
                Size::S2
            } else {
                Size::S1
            };
            net.add_storage(format!("S{i}"), size)
        })
        .collect();
    let all: Vec<NodeId> = net.node_ids().collect();
    for _ in 0..rng.gen_range(3..=12) {
        let ttype = match rng.gen_range(0..6) {
            0 => TransistorType::P,
            1 => TransistorType::D,
            _ => TransistorType::N,
        };
        let strength = if ttype == TransistorType::D {
            Drive::D1
        } else {
            Drive::D2
        };
        let gate = all[rng.gen_range(0..all.len())];
        let source = all[rng.gen_range(0..all.len())];
        let drain = storage[rng.gen_range(0..storage.len())];
        if source == drain {
            continue;
        }
        net.add_transistor(ttype, strength, gate, source, drain);
    }
    let outputs = vec![storage[rng.gen_range(0..storage.len())]];
    let num_patterns = rng.gen_range(2..=5);
    let mut patterns = Vec::with_capacity(num_patterns);
    for _ in 0..num_patterns {
        let mut assignments: Vec<(NodeId, Logic)> = Vec::new();
        for &n in &inputs {
            if !rng.gen_bool(0.8) {
                continue;
            }
            let v = match rng.gen_range(0..8) {
                0 => Logic::X,
                k if k % 2 == 0 => Logic::L,
                _ => Logic::H,
            };
            assignments.push((n, v));
        }
        patterns.push(Pattern::new(vec![Phase::strobe(assignments)]));
    }
    RandomCase {
        net,
        outputs,
        patterns,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Driver-level check on random netlists: a replayed `ParallelSim`
    /// run and a recompute run produce identical detection sequences
    /// and counters, and a raw `ConcurrentSim::run_replayed` against a
    /// fresh tape matches `ConcurrentSim::run`.
    #[test]
    fn random_netlists_replay_bit_identical(seed in 0u64..10_000) {
        let case = random_case(seed);
        let universe = FaultUniverse::stuck_nodes(&case.net)
            .union(FaultUniverse::stuck_transistors(&case.net))
            .sample(10, seed);
        prop_assume!(!universe.faults().is_empty());

        // Raw simulator comparison.
        let config = ConcurrentConfig::paper();
        let mut live = ConcurrentSim::new(&case.net, universe.faults(), config);
        let live_report = live.run(&case.patterns, &case.outputs);
        let tape = GoodTape::record(&case.net, &case.patterns, config.engine);
        let mut replayed = ConcurrentSim::new(&case.net, universe.faults(), config);
        let replay_report = replayed.run_replayed(&case.patterns, &case.outputs, &tape);
        prop_assert_eq!(&replay_report.detections, &live_report.detections,
            "seed={} raw replay detections diverged", seed);
        prop_assert_eq!(replayed.live(), live.live());
        prop_assert_eq!(replayed.record_count(), live.record_count());
        for (r, l) in replay_report.patterns.iter().zip(&live_report.patterns) {
            prop_assert_eq!(
                (r.detected, r.live_before, r.good_groups, r.faulty_groups,
                 r.circuit_settles, r.damped),
                (l.detected, l.live_before, l.good_groups, l.faulty_groups,
                 l.circuit_settles, l.damped),
                "seed={} pattern counters diverged", seed);
        }

        // Driver-level comparison at two shards.
        let pconfig = |reuse| ParallelConfig {
            jobs: Jobs::Fixed(2),
            reuse_good_tape: reuse,
            sim: config,
            ..ParallelConfig::default()
        };
        let recompute = ParallelSim::new(&case.net, universe.clone(), pconfig(false))
            .run(&case.patterns, &case.outputs);
        let replay = ParallelSim::new(&case.net, universe.clone(), pconfig(true))
            .run(&case.patterns, &case.outputs);
        prop_assert_eq!(&replay.detections, &recompute.detections,
            "seed={} sharded replay detections diverged", seed);
    }
}
