//! Fault simulation of the register file — the contrasting
//! observability profile (every bit visible at an output, unlike the
//! RAM's single pin). The paper's conclusion motivates exactly this
//! use ("even when developing a test for a small section of an
//! integrated circuit (such as an ALU or a register array)").

use fmossim::circuits::RegisterFile;
use fmossim::concurrent::{ConcurrentConfig, ConcurrentSim, Pattern, Phase};
use fmossim::faults::FaultUniverse;
use fmossim::netlist::Logic;

/// Writes then reads every word with both polarities.
#[allow(clippy::needless_range_loop)]
fn exercise(rf: &RegisterFile) -> Vec<Pattern> {
    let io = rf.io();
    let mut patterns = Vec::new();
    for phase_value in [0b0101u32, 0b1010u32] {
        for w in 0..rf.words() {
            let mut setup = rf.addr_assignments(w);
            for (b, &d) in io.din.iter().enumerate() {
                let v = Logic::from_bool((phase_value >> (b % 8)) & 1 == 1);
                setup.push((d, v));
            }
            patterns.push(Pattern::labelled(
                vec![
                    Phase::strobe(setup),
                    Phase::strobe(vec![(io.wr, Logic::H)]),
                    Phase::strobe(vec![(io.wr, Logic::L)]),
                ],
                format!("w{phase_value:b}@{w}"),
            ));
        }
        for w in 0..rf.words() {
            patterns.push(Pattern::labelled(
                vec![Phase::strobe(rf.addr_assignments(w)), Phase::strobe(vec![])],
                format!("r@{w}"),
            ));
        }
    }
    patterns
}

#[test]
fn register_file_full_stuck_node_coverage() {
    let rf = RegisterFile::new(4, 2);
    let universe = FaultUniverse::stuck_nodes(rf.network());
    let patterns = exercise(&rf);
    let mut sim = ConcurrentSim::new(rf.network(), universe.faults(), ConcurrentConfig::paper());
    let report = sim.run(&patterns, rf.observed_outputs());
    assert_eq!(
        report.detected(),
        universe.len(),
        "all stuck-node faults observable through the per-bit outputs"
    );
}

#[test]
fn register_file_detects_faster_than_single_output_would() {
    // Observing all outputs beats observing only bit 0: strictly more
    // detections at any pattern prefix, and never later per fault.
    let rf = RegisterFile::new(4, 2);
    let universe = FaultUniverse::stuck_nodes(rf.network());
    let patterns = exercise(&rf);

    let mut sim_all =
        ConcurrentSim::new(rf.network(), universe.faults(), ConcurrentConfig::paper());
    let r_all = sim_all.run(&patterns, rf.observed_outputs());
    let mut sim_one =
        ConcurrentSim::new(rf.network(), universe.faults(), ConcurrentConfig::paper());
    let r_one = sim_one.run(&patterns, &rf.observed_outputs()[..1]);

    assert!(r_all.detected() >= r_one.detected());
    let all_at = r_all.patterns_to_detect();
    let one_at = r_one.patterns_to_detect();
    for (k, (a, o)) in all_at.iter().zip(one_at.iter()).enumerate() {
        assert!(
            a <= o,
            "fault {k}: full observation detects at {a}, single at {o}"
        );
    }
}

#[test]
fn register_file_transistor_faults() {
    let rf = RegisterFile::new(4, 2);
    let universe = FaultUniverse::stuck_transistors(rf.network());
    let patterns = exercise(&rf);
    let mut sim = ConcurrentSim::new(rf.network(), universe.faults(), ConcurrentConfig::paper());
    let report = sim.run(&patterns, rf.observed_outputs());
    assert!(
        report.coverage() > 0.8,
        "coverage {:.1}%",
        report.coverage() * 100.0
    );
}
