//! The paper's §5 validation: "we also simulated other faults,
//! including stuck-open and stuck-closed transistors. The performance
//! characteristics for such faults did not differ significantly from
//! those of node faults."

use fmossim::circuits::Ram;
use fmossim::concurrent::{ConcurrentConfig, ConcurrentSim, RunReport};
use fmossim::faults::{Fault, FaultUniverse};
use fmossim::netlist::TransistorType;
use fmossim::testgen::TestSequence;

fn run_universe(ram: &Ram, universe: &FaultUniverse) -> RunReport {
    let seq = TestSequence::full(ram);
    let mut sim = ConcurrentSim::new(ram.network(), universe.faults(), ConcurrentConfig::paper());
    sim.run(seq.patterns(), ram.observed_outputs())
}

/// Stuck-closed on an always-conducting depletion load is a no-op —
/// intrinsically undetectable. Exclude that class when measuring
/// coverage/cost of the *meaningful* transistor faults.
fn meaningful_transistor_faults(ram: &Ram) -> FaultUniverse {
    FaultUniverse::stuck_transistors(ram.network())
        .faults()
        .iter()
        .copied()
        .filter(|f| match f {
            Fault::TransistorStuckClosed(t) => {
                ram.network().transistor(*t).ttype != TransistorType::D
            }
            _ => true,
        })
        .collect()
}

#[test]
fn transistor_fault_coverage_is_high() {
    let ram = Ram::new(4, 4);
    let universe = meaningful_transistor_faults(&ram);
    let report = run_universe(&ram, &universe);
    // Not every transistor fault is observable through the single
    // output, but the marching sequence must catch the overwhelming
    // majority.
    assert!(
        report.coverage() > 0.85,
        "coverage {:.1}% too low",
        report.coverage() * 100.0
    );
}

#[test]
fn transistor_and_node_fault_profiles_are_similar() {
    let ram = Ram::new(4, 4);
    let nodes = FaultUniverse::stuck_nodes(ram.network());
    let trans = meaningful_transistor_faults(&ram).sample(nodes.len(), 99);

    let rn = run_universe(&ram, &nodes);
    let rt = run_universe(&ram, &trans);

    // Equal-sized universes should cost simulation times within a
    // small factor of each other — the paper's "did not differ
    // significantly". (Undetected faults stay live for the whole run,
    // so the slightly lower transistor-fault coverage shows up as a
    // modestly higher time.)
    let ratio = rt.total_seconds / rn.total_seconds;
    assert!(
        (0.25..4.0).contains(&ratio),
        "transistor/node fault time ratio {ratio:.2} outside [0.25, 4.0]"
    );

    // Both decay: the last quarter of patterns is much cheaper per
    // pattern than the first (head/tail shape in both).
    for (name, r) in [("nodes", &rn), ("transistors", &rt)] {
        let n = r.patterns.len();
        let head: f64 = r.patterns[..n / 4].iter().map(|p| p.seconds).sum();
        let tail: f64 = r.patterns[3 * n / 4..].iter().map(|p| p.seconds).sum();
        assert!(
            head > tail,
            "{name}: head quarter ({head:.4}s) not more expensive than tail quarter ({tail:.4}s)"
        );
    }
}

#[test]
fn stuck_open_makes_dynamic_memory_of_combinational_logic() {
    // The classic non-classical-fault effect (the reason gate-level
    // fault simulators are inadequate, §1 of the paper): a stuck-open
    // transistor leaves a node floating, retaining its previous state.
    use fmossim::concurrent::{Pattern, Phase};
    use fmossim::faults::{Fault, FaultId};
    use fmossim::netlist::{Drive, Logic, Network, Size, TransistorType};

    let mut net = Network::new();
    let vdd = net.add_input("Vdd", Logic::H);
    let gnd = net.add_input("Gnd", Logic::L);
    let a = net.add_input("A", Logic::L);
    let out = net.add_storage("OUT", Size::S1);
    net.add_transistor(TransistorType::P, Drive::D2, a, vdd, out);
    let t_n = net.add_transistor(TransistorType::N, Drive::D2, a, out, gnd);

    let fault = Fault::TransistorStuckOpen(t_n);
    let patterns = vec![
        Pattern::new(vec![Phase::strobe(vec![(a, Logic::L)])]), // good: 1, faulty: 1
        Pattern::new(vec![Phase::strobe(vec![(a, Logic::H)])]), // good: 0, faulty: holds 1!
    ];
    let mut sim = ConcurrentSim::new(
        &net,
        &[fault],
        ConcurrentConfig {
            drop_on_detect: false,
            ..ConcurrentConfig::default()
        },
    );
    let report = sim.run(&patterns, &[out]);
    assert_eq!(report.detected(), 1);
    let d = report.detections[0];
    assert_eq!(d.pattern, 1);
    assert_eq!(d.good, Logic::L);
    assert_eq!(
        d.faulty,
        Logic::H,
        "the faulty inverter remembers its previous output — sequential behaviour"
    );
    assert_eq!(sim.fault_state(FaultId(0), out), Logic::H);
}
