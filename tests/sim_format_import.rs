//! Importing Berkeley `.sim` netlists and simulating them: the
//! cross-crate path a user with a Magic-extracted layout would take.

use fmossim::concurrent::{ConcurrentConfig, ConcurrentSim, Pattern, Phase};
use fmossim::faults::FaultUniverse;
use fmossim::netlist::{parse_sim, Logic, SimImportOptions};
use fmossim::sim::LogicSim;

/// An nMOS RS latch as `ext2sim` would emit it: depletion loads with
/// gate tied to drain, enhancement pulldowns, geometry fields, node
/// capacitances.
const RS_LATCH_SIM: &str = "\
| units: 100 tech: nmos format: MIT
d Q VDD Q 8 2 0 0
d QB VDD QB 8 2 0 0
e SET Q GND 2 2 10 20
e QB Q GND 2 2 10 30
e RESET QB GND 2 2 40 20
e Q QB GND 2 2 40 30
C Q 18.2
C QB 17.9
";

#[test]
fn imported_latch_behaves() {
    let options = SimImportOptions::default().with_inputs(["SET", "RESET"]);
    let (net, report) = parse_sim(RS_LATCH_SIM, &options).unwrap();
    assert_eq!(report.transistors, 6);
    assert!(report.skipped_lines.is_empty());

    let set = net.find_node("SET").unwrap();
    let reset = net.find_node("RESET").unwrap();
    let q = net.find_node("Q").unwrap();
    let qb = net.find_node("QB").unwrap();

    let mut sim = LogicSim::new(&net);
    sim.settle();
    assert_eq!(sim.get(q), Logic::X, "latch starts unknown");

    // Initialise both controls low: the latch stays in its unknown
    // bistable state (correctly X).
    sim.set_input(set, Logic::L);
    sim.set_input(reset, Logic::L);
    sim.settle();
    assert_eq!(sim.get(q), Logic::X, "bistable state still unknown");

    // `SET` gates the pulldown of Q in this wiring: pulsing it forces
    // Q low and, through the cross-coupling, QB high.
    sim.set_input(set, Logic::H);
    sim.settle();
    sim.set_input(set, Logic::L);
    sim.settle();
    assert_eq!(sim.get(q), Logic::L, "after SET pulse");
    assert_eq!(sim.get(qb), Logic::H);

    sim.set_input(reset, Logic::H);
    sim.settle();
    sim.set_input(reset, Logic::L);
    sim.settle();
    assert_eq!(sim.get(q), Logic::H, "after RESET pulse");
    assert_eq!(sim.get(qb), Logic::L);
}

#[test]
fn imported_latch_fault_simulates() {
    let options = SimImportOptions::default().with_inputs(["SET", "RESET"]);
    let (net, _) = parse_sim(RS_LATCH_SIM, &options).unwrap();
    let set = net.find_node("SET").unwrap();
    let reset = net.find_node("RESET").unwrap();
    let q = net.find_node("Q").unwrap();

    let patterns = vec![
        Pattern::new(vec![Phase::strobe(vec![(set, Logic::H)])]),
        Pattern::new(vec![Phase::strobe(vec![(set, Logic::L)])]),
        Pattern::new(vec![Phase::strobe(vec![(reset, Logic::H)])]),
        Pattern::new(vec![Phase::strobe(vec![(reset, Logic::L)])]),
    ];
    let universe = FaultUniverse::stuck_nodes(&net)
        .union(FaultUniverse::stuck_transistors(&net).without_redundant(&net));
    let mut sim = ConcurrentSim::new(&net, universe.faults(), ConcurrentConfig::paper());
    let report = sim.run(&patterns, &[q]);
    assert!(
        report.coverage() > 0.8,
        "imported circuit reaches {:.0}% coverage",
        report.coverage() * 100.0
    );
}
