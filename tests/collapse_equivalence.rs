//! Differential conformance for campaign-level fault collapsing
//! (`Campaign::collapse`): a collapsed campaign — static equivalence
//! classes simulated one representative each, with dynamic activity
//! gating enabled, detections fanned back out at report time — must be
//! **bit-identical** to the uncollapsed campaign it replaces. Same
//! detection set, same live (undetected) set, same per-fault first
//! detection `(pattern, phase)`, same per-pattern `detected` /
//! `live_before` counters, across the whole zoo and every
//! concurrent-family backend under `DetectionPolicy::DefiniteOnly`
//! (the policy under which detection is provably
//! schedule-independent; see `tests/campaign_api.rs`).
//!
//! The full universes run un-sampled: seeded sampling keeps either
//! member of a structural pair independently, which dissolves exactly
//! the equivalence classes this suite exists to exercise.
//!
//! A property test over random netlists (offline proptest shim) then
//! checks the collapsing rules at their root: every member of a
//! computed class, simulated *individually* and uncollapsed, detects
//! at exactly the pattern/phase set of its representative.

use fmossim::campaign::{
    AdaptiveConfig, Backend, Campaign, CampaignReport, ConcurrentConfig, DetectionPolicy, Jobs,
    ParallelConfig,
};
use fmossim::concurrent::Pattern;
use fmossim::faults::{CollapseClasses, FaultId, FaultUniverse};
use fmossim::netlist::{Network, NodeId};
use fmossim::testgen::zoo::{build_zoo, ZOO};
use fmossim::testgen::{RandomNetSpec, RandomNetlist};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Debug-mode pattern budget per workload; the universes themselves
/// are never cut (see the module docs).
const PATTERN_CAP: usize = 24;

/// The concurrent-family matrix: collapsing routes through the
/// campaign's universe/fan-out seam identically for all of them, but
/// gating, sharding and lane packing each interact with the collapsed
/// universe differently enough to earn a row.
fn backend_for(label: &str) -> Backend {
    let sim = ConcurrentConfig {
        policy: DetectionPolicy::DefiniteOnly,
        ..ConcurrentConfig::paper()
    };
    match label {
        "concurrent" => Backend::Concurrent(sim),
        "packed" => Backend::Concurrent(ConcurrentConfig {
            packing: true,
            ..sim
        }),
        "parallel-k2" => Backend::Parallel(ParallelConfig {
            jobs: Jobs::Fixed(2),
            sim,
            ..ParallelConfig::default()
        }),
        "adaptive-k2" => Backend::Adaptive(AdaptiveConfig {
            jobs: Jobs::Fixed(2),
            sim,
            ..AdaptiveConfig::paper(8)
        }),
        other => panic!("unknown backend label {other}"),
    }
}

const BACKENDS: [&str; 4] = ["concurrent", "packed", "parallel-k2", "adaptive-k2"];

fn run_campaign(
    net: &Network,
    universe: &FaultUniverse,
    patterns: &[Pattern],
    outputs: &[NodeId],
    label: &str,
    collapse: bool,
) -> CampaignReport {
    Campaign::new(net)
        .faults(universe.clone())
        .patterns(patterns)
        .outputs(outputs)
        .backend(backend_for(label))
        .collapse(collapse)
        .pattern_limit(PATTERN_CAP)
        .run()
}

/// Per-fault first detection site — the strongest per-fault
/// observable a campaign report exposes.
fn detection_table(r: &CampaignReport) -> BTreeMap<u32, (usize, usize)> {
    let mut table = BTreeMap::new();
    for d in r.detections() {
        table.entry(d.fault.0).or_insert((d.pattern, d.phase));
    }
    table
}

/// The canonical detection multiset (sorted keys): order-insensitive,
/// content-exact.
fn canonical(r: &CampaignReport) -> Vec<String> {
    let mut keys: Vec<String> = r
        .detections()
        .iter()
        .map(fmossim::concurrent::Detection::canonical_key)
        .collect();
    keys.sort_unstable();
    keys
}

fn assert_collapse_equivalence(
    name: &str,
    net: &Network,
    universe: &FaultUniverse,
    patterns: &[Pattern],
    outputs: &[NodeId],
) {
    for label in BACKENDS {
        let plain = run_campaign(net, universe, patterns, outputs, label, false);
        let collapsed = run_campaign(net, universe, patterns, outputs, label, true);

        // The report must describe the *full* universe either way.
        assert_eq!(
            collapsed.run.num_faults,
            universe.len(),
            "{name}/{label}: collapsed report must count parent faults"
        );
        assert!(
            plain.collapse.is_none(),
            "{name}/{label}: an uncollapsed report must not carry collapse stats"
        );
        let cstats = collapsed
            .collapse
            .unwrap_or_else(|| panic!("{name}/{label}: collapsed report archives class stats"));
        assert_eq!(cstats.total_faults, universe.len(), "{name}/{label}");
        assert!(
            cstats.simulated_faults <= cstats.total_faults,
            "{name}/{label}: representatives cannot outnumber faults"
        );

        // Detection set, per-fault detection site, live set.
        assert_eq!(
            canonical(&collapsed),
            canonical(&plain),
            "{name}/{label}: detection sets diverged"
        );
        assert_eq!(
            detection_table(&collapsed),
            detection_table(&plain),
            "{name}/{label}: per-fault detection sites diverged"
        );
        let live = |r: &CampaignReport| -> BTreeSet<u32> {
            let detected: BTreeSet<u32> = r.detections().iter().map(|d| d.fault.0).collect();
            (0..u32::try_from(universe.len()).expect("universe fits"))
                .filter(|k| !detected.contains(k))
                .collect()
        };
        assert_eq!(
            live(&collapsed),
            live(&plain),
            "{name}/{label}: live (undetected) sets diverged"
        );

        // Per-pattern statistics: the fan-out rewrite must restore the
        // exact uncollapsed trajectory, not merely the final totals.
        assert_eq!(
            collapsed.run.patterns.len(),
            plain.run.patterns.len(),
            "{name}/{label}: pattern counts diverged"
        );
        for (i, (c, p)) in collapsed
            .run
            .patterns
            .iter()
            .zip(&plain.run.patterns)
            .enumerate()
        {
            assert_eq!(
                (c.detected, c.live_before),
                (p.detected, p.live_before),
                "{name}/{label}: pattern {i} counters diverged"
            );
        }
    }
}

/// The full matrix over every registry member, full stuck-node
/// universes.
#[test]
fn every_zoo_member_collapses_bit_identically() {
    for (name, _) in ZOO {
        let w = build_zoo(name).expect(name);
        let universe = FaultUniverse::stuck_nodes(&w.net);
        assert_collapse_equivalence(name, &w.net, &universe, &w.patterns, &w.outputs);
    }
}

/// The stuck-transistor class on the combinational members — the
/// series stuck-open rule (R2) only fires on transistor faults, so
/// this is where the structural pairs actually live. (The sequential
/// members' transistor faults can enable charge races that break
/// cross-run determinism independent of collapsing; the combinational
/// subset is race-free, as in `tests/zoo_equivalence.rs`.)
#[test]
fn combinational_members_collapse_transistor_faults_bit_identically() {
    for name in ["adder8", "alu4", "rand-small", "rand-wide"] {
        let w = build_zoo(name).expect(name);
        let universe = FaultUniverse::stuck_transistors(&w.net).without_redundant(&w.net);
        assert_collapse_equivalence(name, &w.net, &universe, &w.patterns, &w.outputs);
    }
}

// ---------------------------------------------------------------------
// Property test: the collapsing rules themselves, at the root.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For a random netlist and its full mixed fault universe, every
    /// member of every computed equivalence class — simulated
    /// *individually*, in a one-fault uncollapsed campaign — detects
    /// at exactly the (pattern, phase) sequence of its class
    /// representative. This is collapsing's soundness claim with no
    /// fan-out machinery in the loop at all.
    #[test]
    fn class_members_detect_exactly_like_their_representative(seed in 0u64..10_000) {
        let rn = RandomNetlist::generate(RandomNetSpec::small(seed));
        let net = rn.network();
        let universe = FaultUniverse::stuck_nodes(net)
            .union(FaultUniverse::stuck_transistors(net));
        let patterns = rn.patterns(8, seed ^ 0xBEEF);
        let outputs = rn.observed_outputs();

        let mut assigned: Vec<NodeId> = patterns
            .iter()
            .flat_map(|p| &p.phases)
            .flat_map(|ph| ph.inputs.iter().map(|&(n, _)| n))
            .collect();
        assigned.sort_unstable();
        assigned.dedup();
        let classes = CollapseClasses::analyze(net, &universe, outputs, &assigned);
        prop_assume!(classes.num_collapsed_classes() > 0);

        // One-fault campaigns have no cross-fault interaction by
        // construction, so per-member detection sequences are the pure
        // behaviour of that fault.
        let solo = |fault: FaultId| -> Vec<(usize, usize)> {
            let one = universe.subset(&[fault]);
            run_campaign(net, &one, &patterns, outputs, "concurrent", false)
                .detections()
                .iter()
                .map(|d| (d.pattern, d.phase))
                .collect()
        };
        for k in 0..classes.num_representatives() {
            let members = classes.members_of(FaultId(u32::try_from(k).expect("fits")));
            if members.len() < 2 {
                continue;
            }
            let reference = solo(members[0]);
            for &m in &members[1..] {
                prop_assert_eq!(
                    &solo(m),
                    &reference,
                    "seed {}: fault {:?} diverged from representative {:?}",
                    seed,
                    m,
                    members[0]
                );
            }
        }
    }
}
