//! Golden-report snapshots: one real campaign per backend, archived
//! as a checked-in JSON fixture under `tests/fixtures/`, locking the
//! version-3 `CampaignReport` schema (including the `batches`
//! telemetry the adaptive generation added and the v3 `metrics`
//! block). The previous generation's `report_v2_*.json` fixtures stay
//! checked in as lenient-parse coverage for archived artifacts.
//!
//! Each fixture is checked three ways:
//!
//! 1. **Byte-exactness** — `to_json(from_json(fixture)) == fixture`:
//!    the serialised format (key order, number formatting, null
//!    spelling) cannot drift without the diff showing up here.
//! 2. **Schema shape** — the version tag and the backend-specific
//!    keys are literally present in the document.
//! 3. **Reproduction** — a fresh run of the identical workload equals
//!    the fixture after timing fields are zeroed; everything
//!    deterministic (detections, counters, plan echo, batch
//!    telemetry) must match bit for bit.
//!
//! Regenerate with `UPDATE_FIXTURES=1 cargo test --test
//! report_snapshots` after an *intentional* schema change.

use fmossim::campaign::{
    AdaptiveConfig, Backend, Campaign, CampaignReport, ConcurrentConfig, Jobs, ParallelConfig,
    Registry, SerialConfig,
};
use fmossim::circuits::Ram;
use fmossim::faults::FaultUniverse;
use fmossim::testgen::TestSequence;
use std::path::PathBuf;

/// The four built-in backends, in fixture order. The adaptive entry
/// freezes its initial plan (`rebalance: false`) so the fixture is
/// fully deterministic — measured-cost re-planning would make
/// `moved_faults` timing-dependent; the schema it exercises is the
/// same either way.
fn fixture_backends() -> [(&'static str, Backend); 4] {
    [
        ("serial", Backend::Serial(SerialConfig::paper())),
        ("concurrent", Backend::Concurrent(ConcurrentConfig::paper())),
        (
            "parallel",
            Backend::Parallel(ParallelConfig {
                jobs: Jobs::Fixed(2),
                sim: ConcurrentConfig::paper(),
                ..ParallelConfig::default()
            }),
        ),
        (
            "adaptive",
            Backend::Adaptive(AdaptiveConfig {
                jobs: Jobs::Fixed(2),
                rebalance: false,
                ..AdaptiveConfig::paper(8)
            }),
        ),
    ]
}

/// The fixtures' common workload: the 4×4 RAM over the full paper
/// sequence, every stuck-node fault, with an active telemetry
/// registry attached so the fixtures lock the v3 `metrics` block.
fn run_fixture_campaign(backend: Backend) -> CampaignReport {
    let ram = Ram::new(4, 4);
    let seq = TestSequence::full(&ram);
    Campaign::new(ram.network())
        .faults(FaultUniverse::stuck_nodes(ram.network()))
        .patterns(seq.patterns())
        .outputs(ram.observed_outputs())
        .backend(backend)
        .with_telemetry(&Registry::new())
        .run()
}

fn fixture_path(version: usize, name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("report_v{version}_{name}.json"))
}

/// Zeroes every measured-time field, leaving only deterministic
/// content. Counters and histograms (groups, settles, detections,
/// batch shapes, the metrics block) are *not* normalised — they must
/// reproduce exactly. Metrics *gauges* are all zeroed: every exported
/// gauge is timing-shaped (seconds, imbalance ratios) or tracks the
/// timing-independent-but-path-dependent live count.
fn normalize(r: &mut CampaignReport) {
    r.wall_seconds = 0.0;
    r.max_shard_seconds = r.max_shard_seconds.map(|_| 0.0);
    r.good_seconds = r.good_seconds.map(|_| 0.0);
    r.serial_estimate_seconds = r.serial_estimate_seconds.map(|_| 0.0);
    r.tape_record_seconds = r.tape_record_seconds.map(|_| 0.0);
    r.run.total_seconds = 0.0;
    for p in &mut r.run.patterns {
        p.seconds = 0.0;
    }
    for b in &mut r.batches {
        b.max_shard_seconds = 0.0;
        b.mean_shard_seconds = 0.0;
        b.imbalance = 0.0;
        b.tape_record_seconds = 0.0;
    }
    for g in r.metrics.gauges.values_mut() {
        *g = 0.0;
    }
}

#[test]
fn fixtures_lock_the_v3_schema() {
    let update = std::env::var_os("UPDATE_FIXTURES").is_some();
    for (name, backend) in fixture_backends() {
        let path = fixture_path(3, name);
        if update {
            let report = run_fixture_campaign(backend);
            std::fs::create_dir_all(path.parent().expect("fixture dir"))
                .expect("create fixtures dir");
            std::fs::write(&path, report.to_json() + "\n").expect("write fixture");
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing fixture {} ({e}); run with UPDATE_FIXTURES=1",
                path.display()
            )
        });
        let text = text.trim_end();

        // 1. Byte-exact round-trip: parsing and re-serialising the
        // archive reproduces it exactly, so key order, number
        // formatting and null spelling are all pinned.
        let parsed = CampaignReport::from_json(text)
            .unwrap_or_else(|e| panic!("{name}: fixture does not parse: {e}"));
        assert_eq!(
            parsed.to_json(),
            text,
            "{name}: serialisation drifted from the checked-in fixture"
        );

        // 2. Schema shape: the literal keys the v3 format promises.
        assert!(text.contains("\"version\":3"), "{name}: not a v3 document");
        assert!(text.contains("\"format\":\"fmossim-campaign-report\""));
        assert!(text.contains("\"batches\":"), "{name}: batches key missing");
        assert!(text.contains("\"control\":"));
        assert!(text.contains("\"metrics\":"), "{name}: metrics key missing");
        assert_eq!(parsed.backend, name);
        match name {
            "serial" => {
                assert!(parsed.good_seconds.is_some());
                assert!(parsed.serial_estimate_seconds.is_some());
            }
            "concurrent" => {
                assert!(
                    parsed.metrics.counters["core.detections"] > 0,
                    "{name}: instrumented backend locks non-empty counters"
                );
                assert!(
                    parsed.metrics.histograms["switch.solve_group.size"].count > 0,
                    "{name}: the solve-group histogram is archived"
                );
            }
            "parallel" => {
                assert_eq!(parsed.jobs, Some(2));
                assert_eq!(parsed.shards, Some(2));
                assert!(parsed.tape_record_seconds.is_some(), "tape echoed");
                assert_eq!(parsed.metrics.counters["par.shards"], 2);
            }
            "adaptive" => {
                assert!(
                    !parsed.batches.is_empty(),
                    "adaptive fixture locks the batches telemetry"
                );
                assert!(text.contains("\"moved_faults\":"));
                assert!(text.contains("\"imbalance\":"));
                assert_eq!(
                    parsed.metrics.counters["campaign.batches"],
                    parsed.batches.len() as u64
                );
            }
            _ => {}
        }

        // 3. Reproduction: a fresh run of the same workload matches
        // the archive exactly once measured times (and the
        // timing-shaped metrics gauges) are zeroed.
        let mut fresh = run_fixture_campaign(backend);
        let mut archived = parsed;
        normalize(&mut fresh);
        normalize(&mut archived);
        assert_eq!(
            fresh.to_json(),
            archived.to_json(),
            "{name}: fresh run diverged from the archived report"
        );
    }
}

/// The collapsed-campaign fixture: the same v3 schema with the two
/// opt-in collapse keys present (`control.collapse` and the top-level
/// `collapse` statistics block). Kept separate from the four plain
/// fixtures, which must stay byte-identical — an uncollapsed report
/// never emits either key.
#[test]
fn collapsed_fixture_locks_the_schema() {
    let run = || {
        let ram = Ram::new(4, 4);
        let seq = TestSequence::full(&ram);
        Campaign::new(ram.network())
            .faults(
                FaultUniverse::stuck_nodes(ram.network())
                    .union(FaultUniverse::stuck_transistors(ram.network())),
            )
            .patterns(seq.patterns())
            .outputs(ram.observed_outputs())
            .backend(Backend::Concurrent(ConcurrentConfig::paper()))
            .collapse(true)
            .with_telemetry(&Registry::new())
            .run()
    };
    let path = fixture_path(3, "collapsed");
    if std::env::var_os("UPDATE_FIXTURES").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("create fixtures dir");
        std::fs::write(&path, run().to_json() + "\n").expect("write fixture");
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with UPDATE_FIXTURES=1",
            path.display()
        )
    });
    let text = text.trim_end();

    // 1. Byte-exact round-trip.
    let parsed =
        CampaignReport::from_json(text).unwrap_or_else(|e| panic!("fixture does not parse: {e}"));
    assert_eq!(
        parsed.to_json(),
        text,
        "collapsed: serialisation drifted from the checked-in fixture"
    );

    // 2. Schema shape: still v3, with both collapse keys.
    assert!(text.contains("\"version\":3"), "still a v3 document");
    assert!(text.contains("\"collapse\":true"), "control echo present");
    assert!(
        text.contains("\"collapse\":{\"classes\":"),
        "statistics block present"
    );
    let stats = parsed.collapse.expect("statistics parse");
    assert!(
        stats.simulated_faults < stats.total_faults && stats.classes > 0,
        "the fixture workload must actually collapse something"
    );
    assert_eq!(parsed.control.collapse, Some(true));
    assert!(
        parsed.metrics.counters["faults.collapsed_classes"] > 0,
        "the collapse telemetry counter is archived"
    );

    // 3. Reproduction: deterministic content matches a fresh run.
    let mut fresh = run();
    let mut archived = parsed;
    normalize(&mut fresh);
    normalize(&mut archived);
    assert_eq!(
        fresh.to_json(),
        archived.to_json(),
        "collapsed: fresh run diverged from the archived report"
    );
}

/// The previous generation's archived v2 fixtures still parse through
/// the lenient reader: no `metrics` key means an empty snapshot, and
/// everything deterministic still reproduces against a fresh
/// (untelemetered) run of the same workload.
#[test]
fn v2_fixtures_still_parse() {
    let ram = Ram::new(4, 4);
    let seq = TestSequence::full(&ram);
    for (name, backend) in fixture_backends() {
        let path = fixture_path(2, name);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing archived v2 fixture {}: {e}", path.display()));
        let archived = CampaignReport::from_json(text.trim_end())
            .unwrap_or_else(|e| panic!("{name}: v2 fixture does not parse: {e}"));
        assert!(
            archived.metrics.counters.is_empty()
                && archived.metrics.gauges.is_empty()
                && archived.metrics.histograms.is_empty(),
            "{name}: pre-telemetry document reads as an empty snapshot"
        );
        // No telemetry attached: the fresh report's metrics block is
        // empty too, so whole-struct equality holds after normalize.
        let mut fresh = Campaign::new(ram.network())
            .faults(FaultUniverse::stuck_nodes(ram.network()))
            .patterns(seq.patterns())
            .outputs(ram.observed_outputs())
            .backend(backend)
            .run();
        let mut archived = archived;
        normalize(&mut fresh);
        normalize(&mut archived);
        // The packing echo postdates the v2 archives: they parse as
        // `None`, while a fresh instrumented backend echoes its knob.
        assert_eq!(archived.control.packing, None);
        fresh.control.packing = None;
        assert_eq!(
            fresh, archived,
            "{name}: fresh run diverged from the archived v2 report"
        );
    }
}

/// The v3 writer round-trips value-exactly through its own parser on
/// every backend's real output (fixture-independent, so this also
/// covers hosts where the fixtures were regenerated).
#[test]
fn real_runs_roundtrip_value_exactly() {
    for (name, backend) in fixture_backends() {
        let report = run_fixture_campaign(backend);
        let text = report.to_json();
        let back = CampaignReport::from_json(&text)
            .unwrap_or_else(|e| panic!("{name}: round-trip parse failed: {e}"));
        assert_eq!(back, report, "{name}: round-trip changed the report");
        assert_eq!(back.to_json(), text, "{name}: re-serialisation drifted");
    }
}

/// Version-1 documents (no tape keys, no batches) still parse — the
/// v3 reader keeps the lenient v1 path alive for archived artifacts.
#[test]
fn v1_documents_still_parse() {
    let report = run_fixture_campaign(Backend::Concurrent(ConcurrentConfig::paper()));
    let v1 = report
        .to_json()
        .replace("\"version\":3", "\"version\":1")
        .replace(",\"batches\":[]", "");
    let back = CampaignReport::from_json(&v1).expect("v1 document parses");
    assert_eq!(back.run.detections, report.run.detections);
    assert!(back.batches.is_empty());
    assert_eq!(
        back.metrics, report.metrics,
        "the metrics block parses even in an old-version document"
    );
}
