//! Differential conformance for `Campaign::collapse` combined with
//! `Campaign::stop_at_coverage`: backends evaluate the coverage
//! target in *parent-universe* terms (each representative's detection
//! weighted by its equivalence-class size, over the parent fault
//! count), so a collapsed run must stop at exactly the same pattern
//! as the uncollapsed run it mirrors — the combination used to be
//! rejected by the CLI and silently mis-evaluated (over
//! representatives) through the builder API and the server.
//!
//! Also locks the satellite audit of `Jobs::Auto` under collapse: the
//! resolved worker count echoed in the report is sized from the
//! *collapsed* universe — the workload the backend actually grades —
//! because the campaign collapses before any backend sees it.

use fmossim::campaign::{
    AdaptiveConfig, Backend, Campaign, CampaignReport, ConcurrentConfig, DetectionPolicy, Jobs,
    ParallelConfig, StopReason,
};
use fmossim::concurrent::Pattern;
use fmossim::faults::{CollapseClasses, FaultUniverse};
use fmossim::netlist::{Network, NodeId};
use fmossim::testgen::zoo::build_zoo;

fn sim() -> ConcurrentConfig {
    // DefiniteOnly keeps detection sets schedule-independent, which is
    // what makes "stops at the same pattern" a well-posed claim.
    ConcurrentConfig {
        policy: DetectionPolicy::DefiniteOnly,
        ..ConcurrentConfig::paper()
    }
}

fn run(
    net: &Network,
    universe: &FaultUniverse,
    patterns: &[Pattern],
    outputs: &[NodeId],
    backend: Backend,
    collapse: bool,
    target: f64,
) -> CampaignReport {
    Campaign::new(net)
        .faults(universe.clone())
        .patterns(patterns)
        .outputs(outputs)
        .backend(backend)
        .collapse(collapse)
        .stop_at_coverage(target)
        .run()
}

/// Pattern-granularity stop (concurrent backend): the collapsed run
/// must simulate exactly as many patterns as the uncollapsed one
/// before the target trips, and both must report the stop.
#[test]
fn concurrent_collapsed_run_stops_at_the_same_pattern() {
    let w = build_zoo("ram4x4").expect("zoo member");
    let universe = FaultUniverse::stuck_nodes(&w.net);
    for target in [0.25, 0.5, 0.75] {
        let backend = Backend::Concurrent(sim());
        let plain = run(
            &w.net,
            &universe,
            &w.patterns,
            &w.outputs,
            backend,
            false,
            target,
        );
        let collapsed = run(
            &w.net,
            &universe,
            &w.patterns,
            &w.outputs,
            backend,
            true,
            target,
        );
        assert_eq!(
            plain.stop,
            StopReason::CoverageReached,
            "target {target}: the target must be reachable for the comparison to bite"
        );
        assert_eq!(
            collapsed.stop,
            StopReason::CoverageReached,
            "target {target}"
        );
        assert_eq!(
            collapsed.run.patterns.len(),
            plain.run.patterns.len(),
            "target {target}: collapsed run stopped at a different pattern"
        );
        // The fanned-out report must clear the target over the full
        // universe — not merely over representatives.
        assert!(collapsed.coverage() >= target, "target {target}");
        assert_eq!(
            collapsed.run.detections, plain.run.detections,
            "target {target}"
        );
    }
}

/// Batch-granularity stop (adaptive backend): same batch size on both
/// sides, so an identical weighted count means an identical stopping
/// batch — and therefore the same number of simulated patterns.
#[test]
fn adaptive_collapsed_run_stops_at_the_same_batch() {
    let w = build_zoo("ram4x4").expect("zoo member");
    let universe = FaultUniverse::stuck_nodes(&w.net);
    let backend = Backend::Adaptive(AdaptiveConfig {
        jobs: Jobs::Fixed(2),
        sim: sim(),
        ..AdaptiveConfig::paper(4)
    });
    let plain = run(
        &w.net,
        &universe,
        &w.patterns,
        &w.outputs,
        backend,
        false,
        0.5,
    );
    let collapsed = run(
        &w.net,
        &universe,
        &w.patterns,
        &w.outputs,
        backend,
        true,
        0.5,
    );
    assert_eq!(plain.stop, StopReason::CoverageReached);
    assert_eq!(collapsed.stop, StopReason::CoverageReached);
    assert_eq!(
        collapsed.run.patterns.len(),
        plain.run.patterns.len(),
        "collapsed adaptive run stopped at a different batch"
    );
    assert!(collapsed.coverage() >= 0.5);
}

/// The parallel backend stops at shard granularity; shard shapes
/// differ between a collapsed and an uncollapsed universe, so pattern
/// parity is not defined here — but the target semantics are: the
/// collapsed run must stop early with parent-universe coverage at or
/// above the target, not merely representative coverage.
#[test]
fn parallel_collapsed_run_honours_the_parent_universe_target() {
    let w = build_zoo("ram4x4").expect("zoo member");
    let universe = FaultUniverse::stuck_nodes(&w.net);
    let backend = Backend::Parallel(ParallelConfig {
        jobs: Jobs::Fixed(2),
        sim: sim(),
        ..ParallelConfig::default()
    });
    let collapsed = run(
        &w.net,
        &universe,
        &w.patterns,
        &w.outputs,
        backend,
        true,
        0.5,
    );
    assert_eq!(collapsed.stop, StopReason::CoverageReached);
    assert!(!collapsed.cancelled);
    assert!(
        collapsed.coverage() >= 0.5,
        "parent-universe coverage {} missed the 0.5 target",
        collapsed.coverage()
    );
}

/// `Jobs::Auto` pool sizing under collapse: the campaign collapses the
/// universe *before* the backend resolves its worker count, so the
/// echoed `jobs` must match a resolution over the collapsed
/// representatives — not the parent universe.
#[test]
fn auto_jobs_resolve_over_the_collapsed_universe() {
    let w = build_zoo("ram4x4").expect("zoo member");
    let universe = FaultUniverse::stuck_nodes(&w.net);
    let backend = Backend::Parallel(ParallelConfig {
        jobs: Jobs::Auto,
        sim: sim(),
        ..ParallelConfig::default()
    });
    let report = Campaign::new(&w.net)
        .faults(universe.clone())
        .patterns(&w.patterns)
        .outputs(&w.outputs)
        .backend(backend)
        .collapse(true)
        .run();

    // Reproduce the collapse the campaign performs (same inputs).
    let mut assigned: Vec<NodeId> = w
        .patterns
        .iter()
        .flat_map(|p| &p.phases)
        .flat_map(|ph| ph.inputs.iter().map(|&(n, _)| n))
        .collect();
    assigned.sort_unstable();
    assigned.dedup();
    let classes = CollapseClasses::analyze(&w.net, &universe, &w.outputs, &assigned);
    let collapsed = classes.collapsed_universe(&universe);
    assert!(
        collapsed.len() < universe.len(),
        "workload must actually collapse for this test to bite"
    );
    assert_eq!(
        report.jobs,
        Some(Jobs::Auto.resolve(&w.net, &collapsed)),
        "auto-sized pool must be resolved from the collapsed universe"
    );
}
