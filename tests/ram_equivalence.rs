//! End-to-end equivalence on the benchmark circuit: the concurrent
//! simulator must agree *exactly* with serial simulation on the RAM —
//! a properly clocked, race-free circuit — for every fault class the
//! paper exercises (node stuck-at, transistor stuck-open/closed,
//! bit-line bridges) over a full marching test sequence.

use fmossim::circuits::Ram;
use fmossim::concurrent::{
    ConcurrentConfig, ConcurrentSim, DetectionPolicy, PatternStats, SerialConfig, SerialSim,
};
use fmossim::faults::{inject, FaultId, FaultUniverse};
use fmossim::testgen::TestSequence;

fn ram_with_bridges(dim: usize) -> (Ram, FaultUniverse) {
    let mut ram = Ram::new(dim, dim);
    let bridges: Vec<_> = ram
        .adjacent_bitline_pairs()
        .into_iter()
        .enumerate()
        .map(|(i, (a, b))| inject::insert_bridge(ram.network_mut(), a, b, &format!("bl{i}")))
        .collect();
    let universe =
        FaultUniverse::stuck_nodes(ram.network()).union(FaultUniverse::from_faults(bridges));
    (ram, universe)
}

/// Full-trace equivalence for a fault sample on a 4×4 RAM.
///
/// Valid only for faults that cannot *create* races in the faulty
/// circuit (node stuck-at, bridges, stuck-open): those behave like the
/// good circuit, deterministically, under any event order. Stuck-closed
/// faults can enable fighting paths (e.g. a spurious simultaneous
/// read+write of one RAM cell) whose settled outcome legitimately
/// depends on event order — serial and concurrent schedule events
/// differently (as the original FMOSSIM did), so those are checked for
/// coverage parity instead (see
/// `stuck_closed_faults_have_coverage_parity`).
fn assert_ram_equivalence(universe: &FaultUniverse, ram: &Ram) {
    let seq = TestSequence::full(ram);
    let outputs = ram.observed_outputs();
    let faults = universe.faults();

    let serial = SerialSim::new(
        ram.network(),
        SerialConfig {
            stop_at_detection: false,
            ..SerialConfig::default()
        },
    );
    let sreport = serial.run(faults, seq.patterns(), outputs);

    let mut csim = ConcurrentSim::new(
        ram.network(),
        faults,
        ConcurrentConfig {
            drop_on_detect: false,
            ..ConcurrentConfig::default()
        },
    );
    for (pi, pattern) in seq.patterns().iter().enumerate() {
        let mut stats = PatternStats::default();
        let mut strobe_idx = 0;
        for (phi, phase) in pattern.phases.iter().enumerate() {
            csim.step_phase(phase, outputs, pi, phi, &mut stats);
            if phase.strobe {
                for (k, fault) in faults.iter().enumerate() {
                    let fid = FaultId(u32::try_from(k).unwrap());
                    for (oi, &out) in outputs.iter().enumerate() {
                        let cval = csim.fault_state(fid, out);
                        let sval = sreport.outcomes[k].strobes[pi][strobe_idx][oi];
                        assert_eq!(
                            cval,
                            sval,
                            "fault {k} ({}) at pattern {pi} ('{}') phase {phi}: \
                             concurrent={cval} serial={sval}",
                            fault.describe(ram.network()),
                            pattern.label
                        );
                    }
                }
                strobe_idx += 1;
            }
        }
    }
}

#[test]
fn node_and_bridge_faults_equivalent_on_ram() {
    let (ram, universe) = ram_with_bridges(4);
    // Sample to keep the serial reference fast; seeded for stability.
    let sample = universe.sample(48, 1);
    assert_ram_equivalence(&sample, &ram);
}

#[test]
fn stuck_open_transistor_faults_equivalent_on_ram() {
    // Stuck-open faults only *remove* conduction paths; they cannot
    // create fighting paths, so exact agreement is expected.
    let (ram, _) = ram_with_bridges(4);
    let opens: Vec<_> = FaultUniverse::stuck_transistors(ram.network())
        .faults()
        .iter()
        .copied()
        .filter(|f| matches!(f, fmossim::faults::Fault::TransistorStuckOpen(_)))
        .collect();
    let universe = FaultUniverse::from_faults(opens).sample(32, 2);
    assert_ram_equivalence(&universe, &ram);
}

/// Stuck-closed faults can make faulty-circuit behaviour genuinely
/// order-dependent (a stuck-closed write strobe turns every read into a
/// simultaneous read+write whose outcome depends on relative delays —
/// physically real, and unresolvable in a unit-delay model). The two
/// simulators then see different-but-legal universes; what must agree
/// is the *quality signal*: detection coverage.
#[test]
fn stuck_closed_faults_have_coverage_parity() {
    let (ram, _) = ram_with_bridges(4);
    // d-type (depletion) devices always conduct, so *their* stuck-
    // closed faults are no-ops — intrinsically undetectable. Keep only
    // enhancement transistors.
    let closed: Vec<_> = FaultUniverse::stuck_transistors(ram.network())
        .faults()
        .iter()
        .copied()
        .filter(|f| match f {
            fmossim::faults::Fault::TransistorStuckClosed(t) => {
                ram.network().transistor(*t).ttype != fmossim::netlist::TransistorType::D
            }
            _ => false,
        })
        .collect();
    let universe = FaultUniverse::from_faults(closed).sample(48, 2);
    let seq = TestSequence::full(&ram);
    let outputs = ram.observed_outputs();

    let serial = SerialSim::new(ram.network(), SerialConfig::paper());
    let sreport = serial.run(universe.faults(), seq.patterns(), outputs);
    let mut csim = ConcurrentSim::new(ram.network(), universe.faults(), ConcurrentConfig::paper());
    let creport = csim.run(seq.patterns(), outputs);

    let s = sreport.detected();
    let c = creport.detected();
    let diff = s.abs_diff(c);
    assert!(
        diff * 10 <= universe.len(),
        "serial detected {s}, concurrent {c} of {} — more than 10% apart",
        universe.len()
    );
    // The overwhelming majority of faults must be detected by both.
    assert!(
        c * 10 >= universe.len() * 8,
        "concurrent coverage {c}/{}",
        universe.len()
    );
    assert!(
        s * 10 >= universe.len() * 8,
        "serial coverage {s}/{}",
        universe.len()
    );
}

/// Drop-on-detect must not change *when* faults are detected: first
/// detections agree with the serial baseline fault by fault.
///
/// Compared under [`DetectionPolicy::DefiniteOnly`]: definite (0 vs 1)
/// divergences are forced by the logic and arrive at the same strobe in
/// both simulators. First *potential* (X-involved) detections are not
/// comparable for every fault — a stuck value on a control node (e.g.
/// the write enable held active) creates the same read/write fighting
/// paths as a stuck-closed strobe transistor, and how early the
/// resulting `X`s resolve is event-order dependent (see the module note
/// on `stuck_closed_faults_have_coverage_parity`).
#[test]
fn detections_match_serial_with_dropping() {
    let (ram, universe) = ram_with_bridges(4);
    let sample = universe.sample(64, 3);
    let seq = TestSequence::full(&ram);
    let outputs = ram.observed_outputs();

    let serial = SerialSim::new(
        ram.network(),
        SerialConfig {
            policy: DetectionPolicy::DefiniteOnly,
            ..SerialConfig::paper()
        },
    );
    let sreport = serial.run(sample.faults(), seq.patterns(), outputs);

    let mut csim = ConcurrentSim::new(
        ram.network(),
        sample.faults(),
        ConcurrentConfig {
            policy: DetectionPolicy::DefiniteOnly,
            ..ConcurrentConfig::paper()
        },
    );
    let creport = csim.run(seq.patterns(), outputs);

    let mut c_at = vec![None; sample.len()];
    for d in &creport.detections {
        c_at[d.fault.index()] = Some((d.pattern, d.phase));
    }
    for (k, o) in sreport.outcomes.iter().enumerate() {
        assert_eq!(
            c_at[k],
            o.detection.map(|d| (d.pattern, d.phase)),
            "fault {k} ({})",
            sample
                .fault(FaultId(u32::try_from(k).unwrap()))
                .describe(ram.network())
        );
    }
}
