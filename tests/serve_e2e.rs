//! End-to-end tests of the campaign server over real sockets: a
//! served campaign's detection set is bit-identical to the offline
//! runner's, a repeat submission hits the good-tape cache and skips
//! the record pass, concurrent campaigns share one bounded worker
//! pool correctly, `DELETE` cancels cooperatively, and `/metrics`
//! emits lint-clean Prometheus text.

use fmossim::campaign::{
    universe_from_spec, Backend, Campaign, CampaignReport, ConcurrentConfig, Jobs, ParallelConfig,
    ShardStrategy,
};
use fmossim::serve::{request, served_config, sse_events, Server, ServerConfig};
use fmossim::telemetry::MetricsSnapshot;
use fmossim::testgen::zoo::build_zoo;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Binds a server on a free port and serves it from a detached
/// thread (the thread lives until the test process exits).
fn start_server(workers: usize) -> SocketAddr {
    let server = Server::bind(&ServerConfig {
        workers,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    std::thread::spawn(move || server.run());
    addr
}

/// Submits a zoo circuit and returns the job id.
fn submit(addr: SocketAddr, circuit: &str, shards: usize) -> String {
    let body = format!("{{\"circuit\":\"{circuit}\",\"shards\":{shards}}}");
    let resp = request(addr, "POST", "/campaigns", Some(&body)).expect("POST /campaigns");
    assert_eq!(resp.status, 202, "{}", resp.body_str().unwrap_or("?"));
    let doc = fmossim::campaign::json::parse(resp.body_str().expect("utf8")).expect("json");
    doc.get("id")
        .and_then(fmossim::campaign::json::Value::as_str)
        .expect("id")
        .to_string()
}

/// Polls the status endpoint until the job is terminal, then returns
/// the parsed status document.
fn wait_terminal(addr: SocketAddr, id: &str) -> fmossim::campaign::json::Value {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let resp = request(addr, "GET", &format!("/campaigns/{id}"), None).expect("GET status");
        assert_eq!(resp.status, 200);
        let doc = fmossim::campaign::json::parse(resp.body_str().expect("utf8")).expect("json");
        let status = doc
            .get("status")
            .and_then(fmossim::campaign::json::Value::as_str)
            .expect("status")
            .to_string();
        if matches!(status.as_str(), "done" | "cancelled" | "failed") {
            return doc;
        }
        assert!(Instant::now() < deadline, "{id} stuck in {status}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Extracts the embedded v3 report from a terminal status document.
fn report_of(doc: &fmossim::campaign::json::Value) -> CampaignReport {
    let report = doc.get("report").expect("terminal doc embeds the report");
    CampaignReport::from_json(&report.to_string()).expect("report parses")
}

/// The offline reference: the same workload on the offline parallel
/// backend under the server's fixed engine configuration.
fn offline_reference(circuit: &str, shards: usize) -> CampaignReport {
    let zoo = build_zoo(circuit).expect("zoo circuit");
    let universe = universe_from_spec(&zoo.net, "stuck-nodes").expect("universe");
    Campaign::new(&zoo.net)
        .faults(universe)
        .patterns(&zoo.patterns)
        .outputs(&zoo.outputs)
        .backend(Backend::Parallel(ParallelConfig {
            sim: served_config(),
            jobs: Jobs::Fixed(2),
            shards: Some(shards),
            strategy: ShardStrategy::RoundRobin,
            reuse_good_tape: true,
        }))
        .run()
}

#[test]
fn served_detections_match_offline_and_repeats_hit_the_tape_cache() {
    let addr = start_server(2);
    let offline = offline_reference("ram4x4", 4);

    // Cold submission: full run including the tape record pass.
    let id = submit(addr, "ram4x4", 4);
    let doc = wait_terminal(addr, &id);
    assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("done"));
    assert_eq!(doc.get("cache_hit").and_then(|v| v.as_bool()), Some(false));
    let cold = report_of(&doc);
    assert_eq!(
        cold.run.detections, offline.run.detections,
        "served detection set must be bit-identical to the offline campaign"
    );
    assert!(
        cold.tape_record_seconds.unwrap_or(0.0) > 0.0,
        "cold runs record"
    );

    // Warm submission: same circuit + stimulus → cached tape, no
    // record pass, identical results.
    let id = submit(addr, "ram4x4", 4);
    let doc = wait_terminal(addr, &id);
    assert_eq!(doc.get("cache_hit").and_then(|v| v.as_bool()), Some(true));
    let warm = report_of(&doc);
    assert_eq!(warm.run.detections, offline.run.detections);
    assert_eq!(
        warm.tape_record_seconds,
        Some(0.0),
        "a cache hit skips the good-machine record pass"
    );

    // The cache counters crossed the wire into /metrics.
    let metrics = request(addr, "GET", "/metrics", None).expect("GET /metrics");
    assert_eq!(metrics.status, 200);
    let text = metrics.body_str().expect("utf8");
    MetricsSnapshot::lint_prometheus(text)
        .unwrap_or_else(|(line, why)| panic!("metrics lint failed at line {line}: {why}"));
    assert!(text.contains("fmossim_serve_cache_hits 1"), "{text}");
    assert!(text.contains("fmossim_serve_cache_misses 1"), "{text}");
}

#[test]
fn concurrent_campaigns_share_a_small_pool_correctly() {
    // 2 workers, 4 campaigns x 4 shards = 16 shard tasks: combined
    // demand far exceeds the pool, so fairness and isolation both
    // matter. Distinct circuits make cross-job mixups visible.
    let addr = start_server(2);
    let circuits = ["ram4x4", "regfile4x4", "adder8", "counter6"];
    let ids: Vec<String> = circuits.iter().map(|c| submit(addr, c, 4)).collect();

    // Consume every job's SSE stream concurrently while they run.
    let streams: Vec<_> = ids
        .iter()
        .map(|id| {
            let path = format!("/campaigns/{id}/events");
            std::thread::spawn(move || sse_events(addr, &path).expect("sse"))
        })
        .collect();
    let events: Vec<Vec<(String, String)>> = streams
        .into_iter()
        .map(|h| h.join().expect("join"))
        .collect();

    for ((id, circuit), events) in ids.iter().zip(&circuits).zip(&events) {
        let doc = wait_terminal(addr, id);
        assert_eq!(
            doc.get("status").and_then(|v| v.as_str()),
            Some("done"),
            "{id} ({circuit})"
        );
        let served = report_of(&doc);
        let offline = offline_reference(circuit, 4);
        assert_eq!(
            served.run.detections, offline.run.detections,
            "{circuit} detections diverged under pool contention"
        );
        // Every stream saw the full lifecycle: queued, running, done.
        let names: Vec<&str> = events.iter().map(|(e, _)| e.as_str()).collect();
        assert_eq!(names.first(), Some(&"status"), "{circuit}");
        assert_eq!(names.last(), Some(&"done"), "{circuit}");
        assert!(
            names.contains(&"shard_done"),
            "{circuit} stream carried no shard progress: {names:?}"
        );
    }
}

#[test]
fn delete_cancels_a_running_campaign() {
    // One worker and many shards keep the job running long enough for
    // the cancel to land at a shard boundary.
    let addr = start_server(1);
    let id = submit(addr, "ram64", 8);
    let resp = request(addr, "DELETE", &format!("/campaigns/{id}"), None).expect("DELETE");
    assert_eq!(resp.status, 200);

    let doc = wait_terminal(addr, &id);
    assert_eq!(
        doc.get("status").and_then(|v| v.as_str()),
        Some("cancelled")
    );
    let report = report_of(&doc);
    assert!(report.cancelled);
    assert_eq!(report.stop, fmossim::campaign::StopReason::Cancelled);

    // Cancelling an unknown job is a clean 404; cancelling a finished
    // job is a no-op that reports the terminal status.
    let missing = request(addr, "DELETE", "/campaigns/job-99", None).expect("DELETE missing");
    assert_eq!(missing.status, 404);
    let again = request(addr, "DELETE", &format!("/campaigns/{id}"), None).expect("DELETE again");
    assert_eq!(again.status, 200);
    let doc = fmossim::campaign::json::parse(again.body_str().expect("utf8")).expect("json");
    assert_eq!(doc.get("cancelling").and_then(|v| v.as_bool()), Some(false));
}

/// Submissions carry `stop_at_coverage` — including together with
/// `collapse`, where the target is evaluated over the parent fault
/// universe. The stopped job finishes as `done` (not cancelled) with
/// coverage at or above the target.
#[test]
fn submissions_take_coverage_targets_even_when_collapsed() {
    let addr = start_server(1);
    for collapse in [false, true] {
        let body = format!(
            "{{\"circuit\":\"ram4x4\",\"shards\":8,\"collapse\":{collapse},\
             \"stop_at_coverage\":0.25}}"
        );
        let resp = request(addr, "POST", "/campaigns", Some(&body)).expect("POST /campaigns");
        assert_eq!(resp.status, 202, "{}", resp.body_str().unwrap_or("?"));
        let doc = fmossim::campaign::json::parse(resp.body_str().expect("utf8")).expect("json");
        let id = doc
            .get("id")
            .and_then(fmossim::campaign::json::Value::as_str)
            .expect("id")
            .to_string();
        let doc = wait_terminal(addr, &id);
        assert_eq!(
            doc.get("status").and_then(|v| v.as_str()),
            Some("done"),
            "collapse={collapse}: a coverage stop is not a cancellation"
        );
        let report = report_of(&doc);
        assert_eq!(
            report.stop,
            fmossim::campaign::StopReason::CoverageReached,
            "collapse={collapse}"
        );
        assert!(!report.cancelled, "collapse={collapse}");
        assert!(
            report.coverage() >= 0.25,
            "collapse={collapse}: coverage {} missed the target",
            report.coverage()
        );
        assert_eq!(
            report.control.stop_at_coverage,
            Some(0.25),
            "collapse={collapse}: the target is echoed in the control block"
        );
    }
}

#[test]
fn bad_requests_get_structured_errors() {
    let addr = start_server(1);
    let resp = request(addr, "POST", "/campaigns", Some("{\"circuit\":\"nope\"}"))
        .expect("POST bad circuit");
    assert_eq!(resp.status, 400);
    assert!(resp
        .body_str()
        .expect("utf8")
        .contains("unknown zoo circuit"));

    let resp = request(addr, "GET", "/campaigns/job-42", None).expect("GET missing");
    assert_eq!(resp.status, 404);

    let resp = request(addr, "PATCH", "/campaigns", None).expect("PATCH");
    assert_eq!(resp.status, 405);

    let resp = request(addr, "GET", "/healthz", None).expect("GET healthz");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body_str().expect("utf8"), "{\"ok\":true}");
}

/// The fixed served engine configuration matches the documented
/// contract: the paper's engine with definite-only detections.
#[test]
fn served_config_is_paper_with_definite_only() {
    let cfg = served_config();
    let paper = ConcurrentConfig::paper();
    assert_eq!(cfg.engine, paper.engine);
    assert_eq!(
        cfg.policy,
        fmossim::concurrent::DetectionPolicy::DefiniteOnly
    );
}
