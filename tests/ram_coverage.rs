//! Coverage behaviour of the marching test sequences on the RAM —
//! the functional claims behind the paper's evaluation setup.

use fmossim::campaign::{Campaign, CampaignReport};
use fmossim::circuits::Ram;
use fmossim::faults::{inject, Fault, FaultUniverse};
use fmossim::netlist::Logic;
use fmossim::testgen::TestSequence;

/// Grades `universe` on the RAM through the unified campaign API
/// (paper-configured concurrent backend).
fn grade(ram: &Ram, universe: FaultUniverse, seq: &TestSequence) -> CampaignReport {
    Campaign::new(ram.network())
        .faults(universe)
        .patterns(seq.patterns())
        .outputs(ram.observed_outputs())
        .run()
}

fn ram_with_bridges(dim: usize) -> (Ram, FaultUniverse) {
    let mut ram = Ram::new(dim, dim);
    let bridges: Vec<_> = ram
        .adjacent_bitline_pairs()
        .into_iter()
        .enumerate()
        .map(|(i, (a, b))| inject::insert_bridge(ram.network_mut(), a, b, &format!("bl{i}")))
        .collect();
    let universe =
        FaultUniverse::stuck_nodes(ram.network()).union(FaultUniverse::from_faults(bridges));
    (ram, universe)
}

/// The paper: the RAMs "could be fully tested" by the control +
/// marching sequences.
#[test]
fn sequence_1_fully_tests_the_ram() {
    let (ram, universe) = ram_with_bridges(4);
    let seq = TestSequence::full(&ram);
    let n = universe.len();
    let report = grade(&ram, universe, &seq);
    assert_eq!(
        report.detected(),
        n,
        "sequence 1 must detect every stuck-node and bridge fault"
    );
}

/// Sequence 2 detects the same faults, just later (the paper: "all
/// other faults are detected slowly as the marching test of the memory
/// array proceeds").
#[test]
fn sequence_2_also_fully_tests_but_later() {
    let (ram, universe) = ram_with_bridges(4);
    let seq1 = TestSequence::full(&ram);
    let seq2 = TestSequence::march_only(&ram);

    let r1 = grade(&ram, universe.clone(), &seq1);
    let r2 = grade(&ram, universe.clone(), &seq2);

    assert_eq!(r1.detected(), universe.len());
    assert_eq!(r2.detected(), universe.len());

    // Mean pattern-of-detection comes later under sequence 2 relative
    // to sequence length: the decoder/bus faults wait for the array
    // march to reach the right addresses.
    let mean = |r: &CampaignReport| {
        r.detections().iter().map(|d| d.pattern).sum::<usize>() as f64 / r.detected() as f64
    };
    let frac1 = mean(&r1) / seq1.len() as f64;
    let frac2 = mean(&r2) / seq2.len() as f64;
    assert!(
        frac2 > frac1,
        "relative detection position: seq1 {frac1:.3} vs seq2 {frac2:.3}"
    );
}

/// A planted cell stuck-at fault must be caught by the array march at
/// the read of that cell, and no earlier than its first read.
#[test]
fn march_catches_planted_cell_fault_at_the_right_read() {
    let ram = Ram::new(4, 4);
    let victim = ram.cell(2, 3);
    let fault = Fault::NodeStuck {
        node: victim,
        value: Logic::H, // stuck-at-1: caught when 0 is expected
    };
    let seq = TestSequence::full(&ram);
    let report = grade(&ram, FaultUniverse::from_faults(vec![fault]), &seq);
    assert_eq!(report.detected(), 1);
    let d = report.detections()[0];
    let label = &seq.patterns()[d.pattern].label;
    assert!(
        label.starts_with("r@") || label.starts_with("w"),
        "detected during a memory operation, got '{label}'"
    );
    // Stuck-at-1 in cell (2,3) = word 11: first march read of word 11
    // expecting 0 is in the r0 sweep. It must not fire before the
    // control section ends.
    assert!(d.pattern >= 7, "not before the control section");
}

/// Every cell's stuck-at faults are detected by the array march alone.
#[test]
fn array_march_detects_every_cell_fault() {
    let ram = Ram::new(4, 4);
    let mut faults = Vec::new();
    for r in 0..4 {
        for c in 0..4 {
            faults.push(Fault::NodeStuck {
                node: ram.cell(r, c),
                value: Logic::L,
            });
            faults.push(Fault::NodeStuck {
                node: ram.cell(r, c),
                value: Logic::H,
            });
        }
    }
    let seq = TestSequence::full(&ram);
    let n = faults.len();
    let report = grade(&ram, FaultUniverse::from_faults(faults), &seq);
    assert_eq!(report.detected(), n, "all 2N cell faults detected");
}

/// Bridge faults between bit lines are detected.
#[test]
fn bitline_bridges_are_detected() {
    let mut ram = Ram::new(4, 4);
    let bridges: Vec<_> = ram
        .adjacent_bitline_pairs()
        .into_iter()
        .enumerate()
        .map(|(i, (a, b))| inject::insert_bridge(ram.network_mut(), a, b, &format!("bl{i}")))
        .collect();
    let seq = TestSequence::full(&ram);
    let n = bridges.len();
    let report = grade(&ram, FaultUniverse::from_faults(bridges), &seq);
    assert_eq!(report.detected(), n, "all bridges detected");
}

/// The severe clock/control faults fall in the head, as in Figure 1
/// ("the first 87 patterns during which all faults in the control and
/// bus logic are detected").
#[test]
fn control_faults_detected_in_the_head() {
    let ram = Ram::new(4, 4);
    let io = ram.io();
    // Frozen-clock faults are the paper's canonical severe faults —
    // clocks are inputs here, so freeze the internal strobe logic
    // instead: WSTR / RSTR stuck.
    let net = ram.network();
    let wstr = net.find_node("WSTR").expect("write strobe exists");
    let rstr = net.find_node("RSTR").expect("read strobe exists");
    let faults = vec![
        Fault::NodeStuck {
            node: wstr,
            value: Logic::L,
        },
        Fault::NodeStuck {
            node: wstr,
            value: Logic::H,
        },
        Fault::NodeStuck {
            node: rstr,
            value: Logic::L,
        },
        Fault::NodeStuck {
            node: rstr,
            value: Logic::H,
        },
    ];
    let seq = TestSequence::full(&ram);
    let head = seq.head_len();
    let report = grade(&ram, FaultUniverse::from_faults(faults), &seq);
    assert_eq!(report.detected(), 4, "all strobe faults detected");
    for d in report.detections() {
        assert!(
            d.pattern < head,
            "strobe fault detected at pattern {} but head is {head}",
            d.pattern
        );
    }
    let _ = io;
}
