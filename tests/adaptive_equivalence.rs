//! Adaptive-backend equivalence: a campaign that runs the pattern
//! sequence in batches — dropping detected faults, migrating surviving
//! fault state across re-partitioned shards, and re-planning from
//! measured shard times between batches — must be **bit-identical** to
//! the one-shot parallel backend: same canonical detection sequence,
//! same fault count, same coverage, for every batch size and worker
//! count, with re-planning on or frozen.
//!
//! This is the load-bearing invariant of `Backend::Adaptive`
//! (`docs/ARCHITECTURE.md` § replay bit-identity): re-planning moves
//! time around, never results.

use fmossim::campaign::{
    AdaptiveConfig, Backend, Campaign, CampaignReport, ConcurrentConfig, Jobs, ParallelConfig,
    SimEvent,
};
use fmossim::circuits::Ram;
use fmossim::concurrent::Pattern;
use fmossim::faults::FaultUniverse;
use fmossim::netlist::{Network, NodeId};
use fmossim::par::ShardStrategy;
use fmossim::testgen::TestSequence;

const SEED: u64 = 850_715;

/// Detection set in canonical order plus the strategy-independent
/// totals. (Per-pattern solver counters are *not* compared: the
/// adaptive backend re-records the good machine per batch, so
/// `good_groups` legitimately differs with the shard count per batch.)
fn fingerprint(r: &CampaignReport) -> (Vec<String>, usize, usize) {
    let detections = r
        .detections()
        .iter()
        .map(fmossim::concurrent::Detection::canonical_key)
        .collect();
    (detections, r.run.num_faults, r.detected())
}

fn parallel_reference(
    net: &Network,
    universe: &FaultUniverse,
    patterns: &[Pattern],
    outputs: &[NodeId],
    jobs: usize,
) -> CampaignReport {
    Campaign::new(net)
        .faults(universe.clone())
        .patterns(patterns)
        .outputs(outputs)
        .backend(Backend::Parallel(ParallelConfig {
            jobs: Jobs::Fixed(jobs),
            sim: ConcurrentConfig::paper(),
            ..ParallelConfig::default()
        }))
        .run()
}

fn adaptive(
    net: &Network,
    universe: &FaultUniverse,
    patterns: &[Pattern],
    outputs: &[NodeId],
    jobs: usize,
    batch: usize,
    rebalance: bool,
) -> CampaignReport {
    Campaign::new(net)
        .faults(universe.clone())
        .patterns(patterns)
        .outputs(outputs)
        .backend(Backend::Adaptive(AdaptiveConfig {
            jobs: Jobs::Fixed(jobs),
            rebalance,
            ..AdaptiveConfig::paper(batch)
        }))
        .run()
}

/// The issue's matrix: batch sizes {1, 4, all} × worker counts, with
/// re-planning both on and frozen, against the one-shot parallel
/// reference.
fn assert_adaptive_equivalence(
    net: &Network,
    universe: &FaultUniverse,
    patterns: &[Pattern],
    outputs: &[NodeId],
) {
    for jobs in [2usize, 4] {
        let reference = parallel_reference(net, universe, patterns, outputs, jobs);
        assert!(reference.detected() > 0, "workload must detect something");
        for batch in [1usize, 4, 0 /* 0 = the whole sequence at once */] {
            for rebalance in [true, false] {
                let report = adaptive(net, universe, patterns, outputs, jobs, batch, rebalance);
                assert_eq!(
                    fingerprint(&report),
                    fingerprint(&reference),
                    "jobs={jobs} batch={batch} rebalance={rebalance}: \
                     adaptive diverged from one-shot parallel"
                );
                assert_eq!(report.backend, "adaptive");
                let expected_batches = if batch == 0 {
                    1
                } else {
                    patterns.len().div_ceil(batch).min(
                        // Batches stop early once every fault is
                        // detected and dropped.
                        report.batches.len(),
                    )
                };
                assert_eq!(report.batches.len(), expected_batches);
                // Per-batch telemetry must account for every pattern
                // simulated and every detection made.
                let batch_patterns: usize = report.batches.iter().map(|b| b.patterns).sum();
                assert!(batch_patterns <= patterns.len());
                let batch_detected: usize = report.batches.iter().map(|b| b.detected).sum();
                assert_eq!(batch_detected, report.detected());
                assert!(report.batches.iter().all(|b| b.imbalance >= 1.0));
            }
        }
    }
}

#[test]
fn ram4x4_adaptive_is_bit_identical() {
    let ram = Ram::new(4, 4);
    let universe = FaultUniverse::stuck_nodes(ram.network());
    let seq = TestSequence::full(&ram);
    assert_adaptive_equivalence(
        ram.network(),
        &universe,
        seq.patterns(),
        ram.observed_outputs(),
    );
}

#[test]
fn ram64_adaptive_is_bit_identical() {
    // The paper's RAM64 on its march sequence; the universe is sampled
    // (seeded, reproducible) to keep the debug-mode matrix quick.
    let ram = Ram::new(8, 8);
    let universe = FaultUniverse::stuck_nodes(ram.network()).sample(48, SEED);
    let seq = TestSequence::march_only(&ram);
    assert_adaptive_equivalence(
        ram.network(),
        &universe,
        seq.patterns(),
        ram.observed_outputs(),
    );
}

/// `drop_detected(false)` keeps detected circuits simulating across
/// batch boundaries (their snapshots carry the detected-once flag);
/// the detection set must still match the parallel backend's.
#[test]
fn adaptive_without_dropping_matches_parallel() {
    let ram = Ram::new(4, 4);
    let universe = FaultUniverse::stuck_nodes(ram.network());
    let seq = TestSequence::full(&ram);
    let run = |backend: Backend| {
        Campaign::new(ram.network())
            .faults(universe.clone())
            .patterns(seq.patterns())
            .outputs(ram.observed_outputs())
            .backend(backend)
            .drop_detected(false)
            .run()
    };
    let reference = run(Backend::Parallel(ParallelConfig {
        jobs: Jobs::Fixed(3),
        sim: ConcurrentConfig::paper(),
        ..ParallelConfig::default()
    }));
    let report = run(Backend::Adaptive(AdaptiveConfig {
        jobs: Jobs::Fixed(3),
        ..AdaptiveConfig::paper(4)
    }));
    assert_eq!(fingerprint(&report), fingerprint(&reference));
    // Nothing dropped: every batch still grades the full universe.
    assert!(report
        .batches
        .iter()
        .all(|b| b.live_before == universe.len()));
}

/// Pool feedback compares static cost against static cost: with
/// `Jobs::Auto` and nothing dropped, the worker count must stay at its
/// initial resolution for every batch. (Regression guard: feeding the
/// EWMA model's measured-seconds totals into `Jobs::refine` against
/// the static initial total made `Auto` pools collapse to one worker
/// after a few batches on multi-core hosts.)
#[test]
fn auto_pool_does_not_shrink_without_detections() {
    let ram = Ram::new(4, 4);
    let universe = FaultUniverse::stuck_nodes(ram.network());
    let seq = TestSequence::full(&ram);
    let report = Campaign::new(ram.network())
        .faults(universe.clone())
        .patterns(seq.patterns())
        .outputs(ram.observed_outputs())
        .backend(Backend::Adaptive(AdaptiveConfig {
            jobs: Jobs::Auto,
            ..AdaptiveConfig::paper(4)
        }))
        .drop_detected(false)
        .run();
    let first = report.batches.first().expect("at least one batch");
    assert!(
        report.batches.iter().all(|b| b.workers == first.workers),
        "workers drifted without any workload change: {:?}",
        report.batches.iter().map(|b| b.workers).collect::<Vec<_>>()
    );
}

/// Coverage targets stop the adaptive backend between batches, and the
/// observer sees shard-order-deterministic events plus one `BatchDone`
/// per batch.
#[test]
fn adaptive_run_control_and_events() {
    let ram = Ram::new(4, 4);
    let universe = FaultUniverse::stuck_nodes(ram.network());
    let seq = TestSequence::full(&ram);
    let mut batch_events = Vec::new();
    let mut shard_events = 0usize;
    let mut detected_events = 0usize;
    let report = Campaign::new(ram.network())
        .faults(universe.clone())
        .patterns(seq.patterns())
        .outputs(ram.observed_outputs())
        .backend(Backend::Adaptive(AdaptiveConfig {
            jobs: Jobs::Fixed(2),
            ..AdaptiveConfig::paper(4)
        }))
        .stop_at_coverage(0.5)
        .on_event(|e| match e {
            SimEvent::BatchDone {
                batch,
                detected_so_far,
                ..
            } => batch_events.push((batch, detected_so_far)),
            SimEvent::ShardDone { .. } => shard_events += 1,
            SimEvent::Detected { .. } => detected_events += 1,
            _ => {}
        })
        .run();
    assert_eq!(batch_events.len(), report.batches.len());
    assert_eq!(detected_events, report.detected());
    assert!(shard_events >= report.batches.len());
    assert!(
        report.coverage() >= 0.5,
        "target honoured: {}",
        report.coverage()
    );
    assert_eq!(
        batch_events.last().expect("at least one batch").1,
        report.detected()
    );
    // The initial strategy is echoed through telemetry: batch counts
    // and shard counts are concrete.
    assert!(report.batches.iter().all(|b| b.shards >= 1));
    let _ = ShardStrategy::ALL; // re-exported alongside the adaptive API
}
