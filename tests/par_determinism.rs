//! Shard determinism: fault-parallel simulation is a pure throughput
//! lever. For every shard count and strategy, `ParallelSim` must
//! produce exactly the detection set (fault, pattern, phase, values)
//! and coverage of a plain single-threaded `ConcurrentSim` run — on
//! the paper's RAM benchmark and on the ALU-section adder.

use fmossim::circuits::{Ram, RippleAdder};
use fmossim::concurrent::{ConcurrentConfig, ConcurrentSim, Pattern, Phase, RunReport};
use fmossim::faults::FaultUniverse;
use fmossim::netlist::{Network, NodeId};
use fmossim::par::{ParallelConfig, ParallelSim, ShardStrategy};
use fmossim::testgen::TestSequence;

/// Canonical view of a report's detections: one tuple per detected
/// fault, sorted — independent of emission order.
fn detection_set(report: &RunReport) -> Vec<(usize, usize, usize, String)> {
    let mut v: Vec<_> = report
        .detections
        .iter()
        .map(|d| {
            (
                d.fault.index(),
                d.pattern,
                d.phase,
                format!("{}->{}", d.good, d.faulty),
            )
        })
        .collect();
    v.sort();
    v
}

/// The property: for K ∈ {1, 2, 4, 7} shards × all strategies, the
/// parallel run equals the reference `ConcurrentSim` run.
fn assert_shard_invariance(
    net: &Network,
    universe: &FaultUniverse,
    patterns: &[Pattern],
    outputs: &[NodeId],
) {
    let mut reference_sim = ConcurrentSim::new(net, universe.faults(), ConcurrentConfig::paper());
    let reference = reference_sim.run(patterns, outputs);
    let expected = detection_set(&reference);
    assert!(reference.detected() > 0, "workload must detect something");

    for k in [1usize, 2, 4, 7] {
        for strategy in ShardStrategy::ALL {
            let config = ParallelConfig {
                jobs: k,
                strategy,
                sim: ConcurrentConfig::paper(),
                ..ParallelConfig::default()
            };
            let sim = ParallelSim::new(net, universe.clone(), config);
            let report = sim.run(patterns, outputs);
            assert_eq!(
                detection_set(&report),
                expected,
                "K={k} strategy={strategy}: detection set diverged"
            );
            assert_eq!(report.num_faults, reference.num_faults);
            assert!(
                (report.coverage() - reference.coverage()).abs() < 1e-12,
                "K={k} strategy={strategy}: coverage diverged"
            );
        }
    }
}

#[test]
fn ram_detections_invariant_under_sharding() {
    // 4×4 keeps the 36-run sweep fast while exercising the full RAM
    // control/march sequence; the 8×8 acceptance run lives in
    // `scaling_par` and the CLI test below.
    let ram = Ram::new(4, 4);
    let universe = FaultUniverse::stuck_nodes(ram.network());
    let seq = TestSequence::full(&ram);
    assert_shard_invariance(
        ram.network(),
        &universe,
        seq.patterns(),
        ram.observed_outputs(),
    );
}

#[test]
fn adder_detections_invariant_under_sharding() {
    let adder = RippleAdder::new(3);
    let universe = FaultUniverse::stuck_nodes(adder.network()).union(
        FaultUniverse::stuck_transistors(adder.network()).without_redundant(adder.network()),
    );
    let cases: Vec<(u64, u64, bool)> = (0..8)
        .flat_map(|a| [(a, 7 - a, false), (a, a ^ 0b101, true)])
        .collect();
    let patterns: Vec<Pattern> = cases
        .iter()
        .map(|&(a, b, cin)| {
            Pattern::labelled(
                vec![Phase::strobe(adder.operand_assignments(a, b, cin))],
                format!("{a}+{b}+{}", u8::from(cin)),
            )
        })
        .collect();
    assert_shard_invariance(
        adder.network(),
        &universe,
        &patterns,
        &adder.observed_outputs(),
    );
}

/// Oversharding (more shards than workers, pulled from the queue) must
/// also leave results untouched.
#[test]
fn oversharded_pool_detections_invariant() {
    let ram = Ram::new(4, 4);
    let universe = FaultUniverse::stuck_nodes(ram.network());
    let seq = TestSequence::full(&ram);
    let outputs = ram.observed_outputs();

    let mut reference_sim =
        ConcurrentSim::new(ram.network(), universe.faults(), ConcurrentConfig::paper());
    let reference = reference_sim.run(seq.patterns(), outputs);

    let config = ParallelConfig {
        jobs: 3,
        shards: Some(11),
        strategy: ShardStrategy::CostEstimated,
        sim: ConcurrentConfig::paper(),
    };
    let sim = ParallelSim::new(ram.network(), universe, config);
    assert_eq!(sim.plan().num_shards(), 11);
    let report = sim.run(seq.patterns(), outputs);
    assert_eq!(detection_set(&report), detection_set(&reference));
}
