//! Shard determinism: fault-parallel simulation is a pure throughput
//! lever. For every shard count and strategy, a `Campaign` on the
//! parallel backend must produce exactly the detection set (fault,
//! pattern, phase, values) and coverage of the same campaign on the
//! concurrent backend — on the paper's RAM benchmark and on the
//! ALU-section adder.

use fmossim::campaign::{Backend, Campaign, CampaignReport, Jobs};
use fmossim::circuits::{Ram, RippleAdder};
use fmossim::concurrent::{ConcurrentConfig, ConcurrentSim, Pattern, Phase};
use fmossim::faults::FaultUniverse;
use fmossim::netlist::{Network, NodeId};
use fmossim::par::{ParallelConfig, ParallelSim, ShardStrategy};
use fmossim::testgen::TestSequence;

/// Canonical view of a report's detections: one tuple per detected
/// fault, sorted — independent of emission order.
fn detection_set(report: &CampaignReport) -> Vec<(usize, usize, usize, String)> {
    let mut v: Vec<_> = report
        .detections()
        .iter()
        .map(|d| {
            (
                d.fault.index(),
                d.pattern,
                d.phase,
                format!("{}->{}", d.good, d.faulty),
            )
        })
        .collect();
    v.sort();
    v
}

/// The property: for K ∈ {1, 2, 4, 7} shards × all strategies, the
/// parallel-backend campaign equals the concurrent-backend reference.
fn assert_shard_invariance(
    net: &Network,
    universe: &FaultUniverse,
    patterns: &[Pattern],
    outputs: &[NodeId],
) {
    let campaign = |backend: Backend| {
        Campaign::new(net)
            .faults(universe.clone())
            .patterns(patterns)
            .outputs(outputs)
            .backend(backend)
            .run()
    };
    let reference = campaign(Backend::Concurrent(ConcurrentConfig::paper()));
    let expected = detection_set(&reference);
    assert!(reference.detected() > 0, "workload must detect something");

    for k in [1usize, 2, 4, 7] {
        for strategy in ShardStrategy::ALL {
            let config = ParallelConfig {
                jobs: Jobs::Fixed(k),
                strategy,
                sim: ConcurrentConfig::paper(),
                ..ParallelConfig::default()
            };
            let report = campaign(Backend::Parallel(config));
            assert_eq!(
                detection_set(&report),
                expected,
                "K={k} strategy={strategy}: detection set diverged"
            );
            assert_eq!(report.run.num_faults, reference.run.num_faults);
            assert!(
                (report.coverage() - reference.coverage()).abs() < 1e-12,
                "K={k} strategy={strategy}: coverage diverged"
            );
            assert_eq!(report.jobs, Some(k), "resolved worker count reported");
        }
    }
}

#[test]
fn ram_detections_invariant_under_sharding() {
    // 4×4 keeps the 36-run sweep fast while exercising the full RAM
    // control/march sequence; the 8×8 acceptance run lives in
    // `scaling_par` and the CLI test below.
    let ram = Ram::new(4, 4);
    let universe = FaultUniverse::stuck_nodes(ram.network());
    let seq = TestSequence::full(&ram);
    assert_shard_invariance(
        ram.network(),
        &universe,
        seq.patterns(),
        ram.observed_outputs(),
    );
}

#[test]
fn adder_detections_invariant_under_sharding() {
    let adder = RippleAdder::new(3);
    let universe = FaultUniverse::stuck_nodes(adder.network()).union(
        FaultUniverse::stuck_transistors(adder.network()).without_redundant(adder.network()),
    );
    let cases: Vec<(u64, u64, bool)> = (0..8)
        .flat_map(|a| [(a, 7 - a, false), (a, a ^ 0b101, true)])
        .collect();
    let patterns: Vec<Pattern> = cases
        .iter()
        .map(|&(a, b, cin)| {
            Pattern::labelled(
                vec![Phase::strobe(adder.operand_assignments(a, b, cin))],
                format!("{a}+{b}+{}", u8::from(cin)),
            )
        })
        .collect();
    assert_shard_invariance(
        adder.network(),
        &universe,
        &patterns,
        &adder.observed_outputs(),
    );
}

/// `Jobs::Auto` is a sizing decision, never a results decision: the
/// autotuned campaign matches the fixed-size reference exactly.
#[test]
fn auto_jobs_detections_match_fixed() {
    let ram = Ram::new(4, 4);
    let universe = FaultUniverse::stuck_nodes(ram.network());
    let seq = TestSequence::full(&ram);
    let campaign = |backend: Backend| {
        Campaign::new(ram.network())
            .faults(universe.clone())
            .patterns(seq.patterns())
            .outputs(ram.observed_outputs())
            .backend(backend)
            .run()
    };
    let fixed = campaign(Backend::Parallel(ParallelConfig::paper(2)));
    let auto = campaign(Backend::Parallel(ParallelConfig::auto()));
    assert_eq!(detection_set(&auto), detection_set(&fixed));
    assert!(auto.jobs.expect("parallel backend reports jobs") >= 1);
}

/// Oversharding (more shards than workers, pulled from the queue) must
/// also leave results untouched — exercised through the raw
/// `ParallelSim` API, which stays public beneath the campaign layer.
#[test]
fn oversharded_pool_detections_invariant() {
    let ram = Ram::new(4, 4);
    let universe = FaultUniverse::stuck_nodes(ram.network());
    let seq = TestSequence::full(&ram);
    let outputs = ram.observed_outputs();

    let mut reference_sim =
        ConcurrentSim::new(ram.network(), universe.faults(), ConcurrentConfig::paper());
    let reference = reference_sim.run(seq.patterns(), outputs);

    let config = ParallelConfig {
        jobs: Jobs::Fixed(3),
        shards: Some(11),
        strategy: ShardStrategy::CostEstimated,
        sim: ConcurrentConfig::paper(),
        ..ParallelConfig::default()
    };
    let sim = ParallelSim::new(ram.network(), universe, config);
    assert_eq!(sim.plan().num_shards(), 11);
    let report = sim.run(seq.patterns(), outputs);

    let key = |detections: &[fmossim::concurrent::Detection]| {
        let mut v: Vec<_> = detections
            .iter()
            .map(|d| (d.fault.index(), d.pattern, d.phase))
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(key(&report.detections), key(&reference.detections));
}
