//! X-state handling end to end: uninitialized circuits read `X`, the
//! control sequence resolves the peripherals, unwritten memory stays
//! `X` until written, and X-propagating faults are reported as
//! potential detections under the strict policy.

use fmossim::circuits::Ram;
use fmossim::concurrent::{ConcurrentConfig, ConcurrentSim, DetectionPolicy};
use fmossim::faults::{Fault, FaultUniverse};
use fmossim::netlist::Logic;
use fmossim::sim::LogicSim;
use fmossim::testgen::{RamOps, TestSequence};

#[test]
fn everything_x_before_clocks() {
    let ram = Ram::new(4, 4);
    let mut sim = LogicSim::new(ram.network());
    sim.settle();
    assert_eq!(sim.get(ram.io().dout), Logic::X, "output X at reset");
    for r in 0..4 {
        for c in 0..4 {
            assert_eq!(sim.get(ram.cell(r, c)), Logic::X, "cell ({r},{c})");
        }
    }
}

#[test]
fn control_sequence_resolves_output() {
    let ram = Ram::new(4, 4);
    let ops = RamOps::new(&ram);
    let mut sim = LogicSim::new(ram.network());
    sim.settle();
    // Write then read word 0: the output pin must become definite.
    for pattern in [ops.write(0, true), ops.read(0)] {
        for phase in &pattern.phases {
            for &(n, v) in &phase.inputs {
                sim.set_input(n, v);
            }
            sim.settle();
        }
    }
    assert_eq!(sim.get(ram.io().dout), Logic::H);
}

#[test]
fn unwritten_cells_stay_x_through_unrelated_activity() {
    let ram = Ram::new(4, 4);
    let ops = RamOps::new(&ram);
    let mut sim = LogicSim::new(ram.network());
    sim.settle();
    // Hammer word 0; cell (3,3) must stay X.
    for _ in 0..3 {
        for pattern in [ops.write(0, true), ops.read(0), ops.write(0, false)] {
            for phase in &pattern.phases {
                for &(n, v) in &phase.inputs {
                    sim.set_input(n, v);
                }
                sim.settle();
            }
        }
    }
    assert_eq!(sim.get(ram.cell(3, 3)), Logic::X);
}

#[test]
fn strict_policy_defers_x_only_differences() {
    // A stuck-open write-access transistor leaves the victim cell
    // floating X forever; reading it gives X vs. a definite good value.
    // Under DefiniteOnly that is not a detection; under AnyDifference
    // (the paper's rule) it is.
    let ram = Ram::new(4, 4);
    let net = ram.network();
    // Find the write-access transistor of cell (0,0): gate = WSEL0,
    // channel WBL0–S0_0.
    let s00 = ram.cell(0, 0);
    let t1 = net
        .transistors()
        .find(|(_, t)| t.connects(s00))
        .map(|(id, _)| id)
        .expect("cell write transistor");
    let fault = Fault::TransistorStuckOpen(t1);
    let seq = TestSequence::full(&ram);

    let mut strict = ConcurrentSim::new(
        net,
        &[fault],
        ConcurrentConfig {
            policy: DetectionPolicy::DefiniteOnly,
            ..ConcurrentConfig::paper()
        },
    );
    let r_strict = strict.run(seq.patterns(), ram.observed_outputs());

    let mut loose = ConcurrentSim::new(net, &[fault], ConcurrentConfig::paper());
    let r_loose = loose.run(seq.patterns(), ram.observed_outputs());

    assert_eq!(r_loose.detected(), 1, "AnyDifference catches the X read");
    assert!(r_loose.detections[0].is_potential());
    assert_eq!(
        r_strict.detected(),
        0,
        "DefiniteOnly never sees a definite contradiction from a floating cell"
    );
}

#[test]
fn x_detections_counted_separately() {
    let ram = Ram::new(4, 4);
    let universe = FaultUniverse::stuck_nodes(ram.network());
    let seq = TestSequence::full(&ram);
    let mut sim = ConcurrentSim::new(ram.network(), universe.faults(), ConcurrentConfig::paper());
    let report = sim.run(seq.patterns(), ram.observed_outputs());
    let potential = report
        .detections
        .iter()
        .filter(|d| d.is_potential())
        .count();
    let definite = report.detected() - potential;
    assert!(definite > 0, "most faults detected definitely");
    // The split is reported, whatever it is.
    assert_eq!(definite + potential, report.detected());
}
