//! Fault-directed test development for an ALU section — the paper's
//! conclusion scenario: "even when developing a test for a small
//! section of an integrated circuit (such as an ALU or a register
//! array), the fault simulator provides information that is hard to
//! obtain by any other means".

use fmossim::campaign::{Campaign, CampaignReport};
use fmossim::circuits::RippleAdder;
use fmossim::concurrent::{Pattern, Phase};
use fmossim::faults::FaultUniverse;
use fmossim::netlist::NodeId;

/// Grades `universe` on the adder through the unified campaign API
/// (paper-configured concurrent backend).
fn grade(
    adder: &RippleAdder,
    universe: &FaultUniverse,
    patterns: &[Pattern],
    outputs: &[NodeId],
) -> CampaignReport {
    Campaign::new(adder.network())
        .faults(universe.clone())
        .patterns(patterns)
        .outputs(outputs)
        .run()
}

fn vectors(adder: &RippleAdder, cases: &[(u64, u64, bool)]) -> Vec<Pattern> {
    cases
        .iter()
        .map(|&(a, b, cin)| {
            Pattern::labelled(
                vec![Phase::strobe(adder.operand_assignments(a, b, cin))],
                format!("{a}+{b}+{}", u8::from(cin)),
            )
        })
        .collect()
}

#[test]
fn exhaustive_vectors_fully_test_small_adder() {
    let adder = RippleAdder::new(2);
    let universe = FaultUniverse::stuck_nodes(adder.network()).union(
        FaultUniverse::stuck_transistors(adder.network()).without_redundant(adder.network()),
    );
    let mut cases = Vec::new();
    for a in 0..4u64 {
        for b in 0..4u64 {
            for cin in [false, true] {
                cases.push((a, b, cin));
            }
        }
    }
    let patterns = vectors(&adder, &cases);
    let report = grade(&adder, &universe, &patterns, &adder.observed_outputs());
    assert!(
        report.coverage() > 0.97,
        "exhaustive vectors reach {:.1}% on {} faults",
        report.coverage() * 100.0,
        universe.len()
    );
}

#[test]
fn sparse_vectors_leave_coverage_holes_the_simulator_pinpoints() {
    let adder = RippleAdder::new(4);
    let universe = FaultUniverse::stuck_nodes(adder.network());
    // A deliberately weak test: only all-zeros and all-ones operands.
    let weak = vectors(&adder, &[(0, 0, false), (15, 15, true)]);
    let weak_report = grade(&adder, &universe, &weak, &adder.observed_outputs());

    // A better set adds the classic carry-ripple and checkerboards.
    let strong = vectors(
        &adder,
        &[
            (0, 0, false),
            (15, 15, true),
            (15, 0, true),
            (0, 15, true),
            (5, 10, false),
            (10, 5, true),
            (1, 1, false),
            (8, 8, false),
        ],
    );
    let strong_report = grade(&adder, &universe, &strong, &adder.observed_outputs());

    assert!(
        strong_report.detected() > weak_report.detected(),
        "richer vectors detect more: {} vs {}",
        strong_report.detected(),
        weak_report.detected()
    );
    // The simulator names the faults the weak set misses — that is the
    // designer feedback loop the paper describes.
    assert!(weak_report.detected() < universe.len());
    assert!(
        strong_report.coverage() > 0.9,
        "strong set reaches {:.1}%",
        strong_report.coverage() * 100.0
    );
}

#[test]
fn per_output_observability_matters() {
    // Observing only the carry-out detects far fewer faults than
    // observing all sum bits.
    let adder = RippleAdder::new(4);
    let universe = FaultUniverse::stuck_nodes(adder.network());
    let mut cases = Vec::new();
    for a in [0u64, 5, 10, 15] {
        for b in [0u64, 3, 12, 15] {
            cases.push((a, b, false));
        }
    }
    let patterns = vectors(&adder, &cases);

    let all_outputs = adder.observed_outputs();
    let all = grade(&adder, &universe, &patterns, &all_outputs);

    let cout_only = [adder.io().cout];
    let cout = grade(&adder, &universe, &patterns, &cout_only);

    assert!(
        all.detected() >= cout.detected() * 2,
        "full observation {} vs carry-only {}",
        all.detected(),
        cout.detected()
    );
    assert!(all.detected() > cout.detected());
}
