//! The end-to-end telemetry layer, across backends: every observer
//! stream obeys its backend's documented event grammar and ends with
//! the `campaign.run` span, and the merged counters of a fault-parallel
//! run are invariant under the shard count — sharding changes
//! wall-clock time, never what was simulated.

use std::collections::BTreeMap;

use fmossim::campaign::{
    AdaptiveConfig, Backend, Campaign, CampaignReport, ConcurrentConfig, DetectionPolicy, Jobs,
    ParallelConfig, Registry, SerialConfig, SimEvent,
};
use fmossim::faults::FaultUniverse;
use fmossim::testgen::zoo::build_zoo;

/// Backend equivalence (and therefore cross-K counter equality) holds
/// under definite-only detection; see `tests/campaign_api.rs`.
const POLICY: DetectionPolicy = DetectionPolicy::DefiniteOnly;

fn concurrent_config() -> ConcurrentConfig {
    ConcurrentConfig {
        policy: POLICY,
        ..ConcurrentConfig::paper()
    }
}

fn run_with_events(circuit: &str, backend: Backend) -> (CampaignReport, Vec<SimEvent>) {
    let w = build_zoo(circuit).expect("zoo member");
    let mut events = Vec::new();
    let report = Campaign::new(&w.net)
        .faults(FaultUniverse::stuck_nodes(&w.net))
        .patterns(&w.patterns)
        .outputs(&w.outputs)
        .backend(backend)
        .on_event(|e| events.push(e))
        .run();
    (report, events)
}

/// Guarantees every backend makes: the stream ends with exactly one
/// `campaign.run` span, and `Detected` / `FaultDropped` counts match
/// the report (drop-on-detect is the default).
fn assert_common_grammar(report: &CampaignReport, events: &[SimEvent]) {
    let run_spans = events
        .iter()
        .filter(|e| matches!(e, SimEvent::Span { name, .. } if *name == "campaign.run"))
        .count();
    assert_eq!(run_spans, 1, "{}: one campaign.run span", report.backend);
    assert!(
        matches!(
            events.last(),
            Some(SimEvent::Span {
                name: "campaign.run",
                seconds,
            }) if *seconds > 0.0
        ),
        "{}: stream ends with the campaign.run span",
        report.backend
    );
    let detected = events
        .iter()
        .filter(|e| matches!(e, SimEvent::Detected { .. }))
        .count();
    let dropped = events
        .iter()
        .filter(|e| matches!(e, SimEvent::FaultDropped { .. }))
        .count();
    assert_eq!(detected, report.detected(), "{}: Detected", report.backend);
    assert_eq!(
        dropped,
        report.detected(),
        "{}: FaultDropped",
        report.backend
    );
}

#[test]
fn concurrent_events_are_pattern_bracketed() {
    let (report, events) = run_with_events("regfile4x4", Backend::Concurrent(concurrent_config()));
    assert_common_grammar(&report, &events);
    // PatternStart(p) < Detected{pattern: p} < PatternDone(p), patterns
    // in order, detections only inside their own pattern's bracket.
    let mut open: Option<usize> = None;
    let mut next_pattern = 0usize;
    for e in &events {
        match *e {
            SimEvent::PatternStart { pattern, .. } => {
                assert_eq!(open, None, "pattern {pattern} started inside another");
                assert_eq!(pattern, next_pattern, "patterns start in order");
                open = Some(pattern);
            }
            SimEvent::PatternDone { pattern, .. } => {
                assert_eq!(open, Some(pattern), "PatternDone closes the open pattern");
                open = None;
                next_pattern = pattern + 1;
            }
            SimEvent::Detected { pattern, .. } => {
                assert_eq!(
                    open,
                    Some(pattern),
                    "a detection is bracketed by its own pattern's Start/Done"
                );
            }
            SimEvent::FaultDropped { .. } => {
                assert!(open.is_some(), "drops happen inside a pattern bracket");
            }
            SimEvent::Span { name, .. } => {
                assert_eq!(name, "campaign.run", "concurrent backend has no re-plans");
            }
            SimEvent::ShardDone { .. } | SimEvent::BatchDone { .. } => {
                panic!("concurrent backend emits no shard/batch events")
            }
        }
    }
    assert_eq!(open, None, "every pattern bracket was closed");
    assert_eq!(
        next_pattern, report.patterns_total,
        "every pattern streamed"
    );
}

#[test]
fn serial_events_are_fault_major() {
    let (report, events) = run_with_events(
        "regfile4x4",
        Backend::Serial(SerialConfig {
            policy: POLICY,
            ..SerialConfig::paper()
        }),
    );
    assert_common_grammar(&report, &events);
    // Fault-major: per-pattern and shard/batch events would be
    // meaningless, so the vocabulary is Detected/FaultDropped + span.
    for e in &events {
        assert!(
            matches!(
                e,
                SimEvent::Detected { .. } | SimEvent::FaultDropped { .. } | SimEvent::Span { .. }
            ),
            "serial backend emitted {e:?}"
        );
    }
}

#[test]
fn parallel_events_cover_every_shard() {
    let shards = 3;
    let (report, events) = run_with_events(
        "regfile4x4",
        Backend::Parallel(ParallelConfig {
            jobs: Jobs::Fixed(shards),
            sim: concurrent_config(),
            ..ParallelConfig::default()
        }),
    );
    assert_common_grammar(&report, &events);
    let mut shards_seen: Vec<usize> = events
        .iter()
        .filter_map(|e| match e {
            SimEvent::ShardDone { shard, .. } => Some(*shard),
            _ => None,
        })
        .collect();
    shards_seen.sort_unstable();
    assert_eq!(shards_seen, (0..shards).collect::<Vec<_>>());
    let shard_detected: usize = events
        .iter()
        .filter_map(|e| match e {
            SimEvent::ShardDone { detected, .. } => Some(*detected),
            _ => None,
        })
        .sum();
    assert_eq!(shard_detected, report.detected());
}

#[test]
fn adaptive_events_close_batches_in_order() {
    let (report, events) = run_with_events(
        "regfile4x4",
        Backend::Adaptive(AdaptiveConfig {
            batch: 4,
            jobs: Jobs::Fixed(2),
            sim: concurrent_config(),
            ..AdaptiveConfig::default()
        }),
    );
    assert_common_grammar(&report, &events);
    // Batches close in order; every detection since the previous
    // BatchDone falls inside the closing batch's pattern range, so
    // Detected < BatchDone holds batch by batch.
    let mut next_batch = 0usize;
    let mut last_detected_so_far = 0usize;
    let mut pending_detections: Vec<usize> = Vec::new();
    for e in &events {
        match *e {
            SimEvent::Detected { pattern, .. } => pending_detections.push(pattern),
            SimEvent::BatchDone {
                batch,
                first_pattern,
                patterns,
                detected_so_far,
                ..
            } => {
                assert_eq!(batch, next_batch, "batches close in order");
                next_batch += 1;
                assert!(
                    detected_so_far >= last_detected_so_far,
                    "detected_so_far is monotone"
                );
                last_detected_so_far = detected_so_far;
                for &p in &pending_detections {
                    assert!(
                        (first_pattern..first_pattern + patterns).contains(&p),
                        "detection at pattern {p} precedes its batch \
                         [{first_pattern}, {})",
                        first_pattern + patterns
                    );
                }
                pending_detections.clear();
            }
            SimEvent::Span { name, .. } => {
                assert!(
                    name == "campaign.run" || name == "campaign.replan",
                    "unexpected span {name:?}"
                );
            }
            _ => {}
        }
    }
    assert!(
        pending_detections.is_empty(),
        "no detection outside a batch"
    );
    assert_eq!(next_batch, report.batches.len(), "every batch streamed");
    assert_eq!(last_detected_so_far, report.detected());
}

/// The counters that count *simulation decisions* — how many circuit
/// settles, private events, faulty-circuit groups, detections — must
/// not depend on how the fault list is sharded. Excluded by design:
/// gauges (timing-shaped), `core.good.groups` / `core.tape.*` (one
/// shard recomputes the good machine, many shards replay a tape),
/// `switch.*` (counts good-machine solver work, which moves into the
/// tape recorder when sharded) and `par.*` (counts the shards
/// themselves).
const K_INVARIANT_COUNTERS: [&str; 5] = [
    "core.circuit.settles",
    "core.detections",
    "core.events_scheduled",
    "core.faulty.groups",
    "core.faults_dropped",
];

#[test]
fn merged_counters_are_shard_count_invariant() {
    for circuit in ["regfile4x4", "pla6"] {
        let w = build_zoo(circuit).expect("zoo member");
        let universe = FaultUniverse::stuck_nodes(&w.net);
        let mut baseline: Option<(usize, BTreeMap<String, u64>)> = None;
        for k in [1usize, 2, 4] {
            let registry = Registry::new();
            let report = Campaign::new(&w.net)
                .faults(universe.clone())
                .patterns(&w.patterns)
                .outputs(&w.outputs)
                .backend(Backend::Parallel(ParallelConfig {
                    jobs: Jobs::Fixed(k),
                    sim: concurrent_config(),
                    ..ParallelConfig::default()
                }))
                .with_telemetry(&registry)
                .run();
            let snapshot = registry.snapshot();
            assert_eq!(
                report.metrics, snapshot,
                "{circuit} K={k}: the report embeds the registry snapshot"
            );
            assert_eq!(
                snapshot.counters["core.detections"],
                report.detected() as u64,
                "{circuit} K={k}"
            );
            assert_eq!(
                snapshot.counters["par.shards"], k as u64,
                "{circuit} K={k}: one par.shards tick per shard"
            );
            let invariant: BTreeMap<String, u64> = K_INVARIANT_COUNTERS
                .iter()
                .map(|&name| {
                    let v = *snapshot
                        .counters
                        .get(name)
                        .unwrap_or_else(|| panic!("{circuit} K={k}: counter {name} missing"));
                    (name.to_string(), v)
                })
                .collect();
            assert!(
                invariant["core.circuit.settles"] > 0,
                "{circuit} K={k}: workload does work"
            );
            match &baseline {
                None => baseline = Some((k, invariant)),
                Some((k0, expected)) => {
                    assert_eq!(
                        &invariant, expected,
                        "{circuit}: merged counters diverged between K={k0} and K={k}"
                    );
                }
            }
        }
    }
}
