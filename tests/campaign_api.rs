//! The unified campaign API, end to end: one workload graded through
//! every backend must yield identical detection sets; run control and
//! observers behave as documented; the JSON artifact round-trips.

use fmossim::campaign::{
    Backend, Campaign, CampaignReport, ConcurrentConfig, DetectionPolicy, Jobs, ParallelConfig,
    SerialConfig, SimEvent, StopReason,
};
use fmossim::circuits::{Ram, RippleAdder};
use fmossim::concurrent::{Pattern, Phase};
use fmossim::faults::FaultUniverse;
use fmossim::netlist::{Network, NodeId};
use fmossim::testgen::TestSequence;

/// The three backends with a common detection policy.
///
/// Backend equivalence is asserted under [`DetectionPolicy::DefiniteOnly`]:
/// definite (0 vs 1) divergences are forced by the logic and arrive at
/// the same strobe in every simulator, while first *potential* (`X`)
/// detections can legitimately differ between event schedules (see
/// `tests/ram_equivalence.rs`).
fn backends() -> [Backend; 3] {
    let policy = DetectionPolicy::DefiniteOnly;
    [
        Backend::Serial(SerialConfig {
            policy,
            ..SerialConfig::paper()
        }),
        Backend::Concurrent(ConcurrentConfig {
            policy,
            ..ConcurrentConfig::paper()
        }),
        Backend::Parallel(ParallelConfig {
            jobs: Jobs::Fixed(3),
            sim: ConcurrentConfig {
                policy,
                ..ConcurrentConfig::paper()
            },
            ..ParallelConfig::default()
        }),
    ]
}

fn detection_set(report: &CampaignReport) -> Vec<(usize, usize, usize)> {
    let mut v: Vec<_> = report
        .detections()
        .iter()
        .map(|d| (d.fault.index(), d.pattern, d.phase))
        .collect();
    v.sort_unstable();
    v
}

fn assert_backend_equivalence(
    net: &Network,
    universe: &FaultUniverse,
    patterns: &[Pattern],
    outputs: &[NodeId],
) {
    let mut reports = Vec::new();
    for backend in backends() {
        let name = backend.name();
        let report = Campaign::new(net)
            .faults(universe.clone())
            .patterns(patterns)
            .outputs(outputs)
            .backend(backend)
            .run();
        assert_eq!(report.backend, name);
        assert_eq!(report.run.num_faults, universe.len());
        assert!(report.detected() > 0, "{name}: workload detects something");
        reports.push((name, report));
    }
    let (ref_name, reference) = &reports[0];
    for (name, report) in &reports[1..] {
        assert_eq!(
            detection_set(report),
            detection_set(reference),
            "{name} vs {ref_name}: detection sets diverged"
        );
    }
}

#[test]
fn backends_agree_on_ram4x4() {
    let ram = Ram::new(4, 4);
    let universe = FaultUniverse::stuck_nodes(ram.network());
    let seq = TestSequence::full(&ram);
    assert_backend_equivalence(
        ram.network(),
        &universe,
        seq.patterns(),
        ram.observed_outputs(),
    );
}

#[test]
fn backends_agree_on_adder() {
    let adder = RippleAdder::new(3);
    let universe = FaultUniverse::stuck_nodes(adder.network());
    let cases: Vec<(u64, u64, bool)> = (0..8).flat_map(|a| [(a, 7 - a, false)]).collect();
    let patterns: Vec<Pattern> = cases
        .iter()
        .map(|&(a, b, cin)| Pattern::new(vec![Phase::strobe(adder.operand_assignments(a, b, cin))]))
        .collect();
    assert_backend_equivalence(
        adder.network(),
        &universe,
        &patterns,
        &adder.observed_outputs(),
    );
}

#[test]
fn report_json_roundtrips_from_real_runs() {
    let ram = Ram::new(4, 4);
    let universe = FaultUniverse::stuck_nodes(ram.network());
    let seq = TestSequence::full(&ram);
    for backend in backends() {
        let report = Campaign::new(ram.network())
            .faults(universe.clone())
            .patterns(seq.patterns())
            .outputs(ram.observed_outputs())
            .backend(backend)
            .run();
        let text = report.to_json();
        let back = CampaignReport::from_json(&text).expect("artifact parses");
        assert_eq!(report, back, "{}: JSON round-trip", report.backend);
        assert_eq!(text, back.to_json(), "serialisation is deterministic");
    }
}

#[test]
fn observer_streams_consistent_events() {
    let ram = Ram::new(4, 4);
    let universe = FaultUniverse::stuck_nodes(ram.network());
    let seq = TestSequence::full(&ram);
    let mut detected_events = 0usize;
    let mut dropped_events = 0usize;
    let mut pattern_starts = 0usize;
    let mut pattern_dones = 0usize;
    let mut spans = 0usize;
    let report = Campaign::new(ram.network())
        .faults(universe.clone())
        .patterns(seq.patterns())
        .outputs(ram.observed_outputs())
        .on_event(|e| match e {
            SimEvent::Detected { .. } => detected_events += 1,
            SimEvent::FaultDropped { .. } => dropped_events += 1,
            SimEvent::PatternStart { .. } => pattern_starts += 1,
            SimEvent::PatternDone { .. } => pattern_dones += 1,
            SimEvent::Span { name, .. } => {
                assert_eq!(name, "campaign.run", "concurrent backend has no re-plans");
                spans += 1;
            }
            SimEvent::ShardDone { .. } => panic!("concurrent backend has no shards"),
            SimEvent::BatchDone { .. } => panic!("concurrent backend has no batches"),
        })
        .run();
    assert_eq!(detected_events, report.detected());
    assert_eq!(dropped_events, report.detected(), "drop-on-detect is on");
    assert_eq!(pattern_starts, seq.len());
    assert_eq!(pattern_dones, seq.len());
    assert_eq!(spans, 1, "one campaign.run span per run");
}

#[test]
fn parallel_observer_sees_every_shard() {
    let ram = Ram::new(4, 4);
    let universe = FaultUniverse::stuck_nodes(ram.network());
    let seq = TestSequence::full(&ram);
    let mut shards_seen = Vec::new();
    let mut shard_detected = 0usize;
    let report = Campaign::new(ram.network())
        .faults(universe.clone())
        .patterns(seq.patterns())
        .outputs(ram.observed_outputs())
        .backend(Backend::Parallel(ParallelConfig::paper(4)))
        .on_event(|e| {
            if let SimEvent::ShardDone {
                shard, detected, ..
            } = e
            {
                shards_seen.push(shard);
                shard_detected += detected;
            }
        })
        .run();
    shards_seen.sort_unstable();
    assert_eq!(shards_seen, vec![0, 1, 2, 3]);
    assert_eq!(shard_detected, report.detected());
    assert_eq!(report.shards, Some(4));
    assert!(report.max_shard_seconds.expect("critical path") > 0.0);
}

#[test]
fn stop_at_coverage_cuts_the_run_short() {
    let ram = Ram::new(4, 4);
    let universe = FaultUniverse::stuck_nodes(ram.network());
    let seq = TestSequence::full(&ram);
    let full = Campaign::new(ram.network())
        .faults(universe.clone())
        .patterns(seq.patterns())
        .outputs(ram.observed_outputs())
        .run();
    assert_eq!(full.stop, StopReason::Completed);
    assert_eq!(full.coverage(), 1.0, "the march fully tests the RAM");

    let early = Campaign::new(ram.network())
        .faults(universe.clone())
        .patterns(seq.patterns())
        .outputs(ram.observed_outputs())
        .stop_at_coverage(0.5)
        .run();
    assert_eq!(early.stop, StopReason::CoverageReached);
    assert!(early.coverage() >= 0.5);
    assert!(
        early.run.patterns.len() < seq.len(),
        "the coverage target saves patterns: {} of {}",
        early.run.patterns.len(),
        seq.len()
    );
}

#[test]
fn pattern_limit_truncates_the_sequence() {
    let ram = Ram::new(4, 4);
    let universe = FaultUniverse::stuck_nodes(ram.network());
    let seq = TestSequence::full(&ram);
    let report = Campaign::new(ram.network())
        .faults(universe)
        .patterns(seq.patterns())
        .outputs(ram.observed_outputs())
        .pattern_limit(7)
        .run();
    assert_eq!(report.stop, StopReason::PatternLimit);
    assert_eq!(report.patterns_total, 7);
    assert_eq!(report.run.patterns.len(), 7);
    assert!(report.detections().iter().all(|d| d.pattern < 7));
}

#[test]
fn drop_detected_off_grades_the_whole_sequence() {
    let ram = Ram::new(4, 4);
    let universe = FaultUniverse::stuck_nodes(ram.network());
    let seq = TestSequence::full(&ram);
    let mut dropped = 0usize;
    let report = Campaign::new(ram.network())
        .faults(universe.clone())
        .patterns(seq.patterns())
        .outputs(ram.observed_outputs())
        .drop_detected(false)
        .on_event(|e| {
            if matches!(e, SimEvent::FaultDropped { .. }) {
                dropped += 1;
            }
        })
        .run();
    assert_eq!(dropped, 0, "no drop events when dropping is off");
    assert_eq!(report.detected(), universe.len(), "coverage unchanged");
    assert!(!report.control.drop_detected);
}

#[test]
fn serial_backend_reports_reference_timing() {
    let ram = Ram::new(4, 4);
    let universe = FaultUniverse::stuck_nodes(ram.network());
    let seq = TestSequence::full(&ram);
    let report = Campaign::new(ram.network())
        .faults(universe)
        .patterns(seq.patterns())
        .outputs(ram.observed_outputs())
        .backend(Backend::Serial(SerialConfig::paper()))
        .run();
    assert!(report.good_seconds.expect("good-only reference") > 0.0);
    assert!(report.serial_estimate_seconds.expect("paper estimator") > 0.0);
    assert!(report.jobs.is_none(), "serial backend has no worker pool");
}
