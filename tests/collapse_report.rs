//! Report-level edge cases of campaign fault collapsing: the fan-out
//! that reconstructs a full-universe report from a collapsed run must
//! stay consistent when there is nothing to collapse, when a dropped
//! representative stands for a whole class, and when a cooperative
//! cancel cuts the campaign mid-flight. (The happy-path differential
//! matrix lives in `tests/collapse_equivalence.rs`; the golden JSON
//! fixture in `tests/report_snapshots.rs`.)

use fmossim::campaign::{
    Backend, Campaign, CampaignReport, ConcurrentConfig, SimEvent, StopReason,
};
use fmossim::circuits::Ram;
use fmossim::faults::{CollapseClasses, FaultId, FaultUniverse};
use fmossim::netlist::NodeId;
use fmossim::testgen::TestSequence;
use std::sync::atomic::Ordering;

/// The shared workload: the 4×4 RAM over the paper sequence, with the
/// mixed universe whose transistor faults give the series rule
/// something to pair.
fn workload() -> (Ram, TestSequence, FaultUniverse) {
    let ram = Ram::new(4, 4);
    let seq = TestSequence::full(&ram);
    let universe = FaultUniverse::stuck_nodes(ram.network())
        .union(FaultUniverse::stuck_transistors(ram.network()));
    (ram, seq, universe)
}

/// The class structure the campaign will compute for this workload —
/// the same analysis call, so the tests can reason about specific
/// classes.
fn classes_for(ram: &Ram, seq: &TestSequence, universe: &FaultUniverse) -> CollapseClasses {
    let mut assigned: Vec<NodeId> = seq
        .patterns()
        .iter()
        .flat_map(|p| &p.phases)
        .flat_map(|ph| ph.inputs.iter().map(|&(n, _)| n))
        .collect();
    assigned.sort_unstable();
    assigned.dedup();
    CollapseClasses::analyze(ram.network(), universe, ram.observed_outputs(), &assigned)
}

fn campaign<'a>(ram: &'a Ram, seq: &'a TestSequence, universe: &FaultUniverse) -> Campaign<'a, 'a> {
    Campaign::new(ram.network())
        .faults(universe.clone())
        .patterns(seq.patterns())
        .outputs(ram.observed_outputs())
        .backend(Backend::Concurrent(ConcurrentConfig::paper()))
}

/// The fan-out's internal bookkeeping must always reconcile, whatever
/// cut the run short: every per-pattern `detected` sums to the
/// detection list, and the live count steps down by exactly the
/// detections fanned out before it (`drop_detected` is on by
/// default).
fn assert_consistent(report: &CampaignReport, universe: &FaultUniverse) {
    assert_eq!(report.run.num_faults, universe.len());
    let per_pattern: usize = report.run.patterns.iter().map(|p| p.detected).sum();
    assert_eq!(
        per_pattern,
        report.detections().len(),
        "per-pattern detected counts must sum to the detection list"
    );
    let mut seen = 0usize;
    for (i, p) in report.run.patterns.iter().enumerate() {
        assert_eq!(
            p.live_before,
            universe.len() - seen,
            "pattern {i}: live count out of step with fanned detections"
        );
        seen += p.detected;
    }
    for d in report.detections() {
        assert!(
            (d.fault.index()) < universe.len(),
            "detection names a fault outside the parent universe"
        );
    }
}

/// When the universe has nothing to collapse (every class a
/// singleton), `collapse(true)` must be a pure pass-through: the same
/// report as the plain run, plus collapse statistics that say so.
#[test]
fn identity_classes_are_a_pure_pass_through() {
    let (ram, seq, full) = workload();
    // Find a pair of faults the analysis cannot relate; scanning from
    // the front keeps the choice deterministic and the assert below
    // guards it against future rule additions.
    let classes = classes_for(&ram, &seq, &full);
    let mut singletons: Vec<FaultId> = Vec::new();
    for k in 0..classes.num_representatives() {
        let members = classes.members_of(FaultId(u32::try_from(k).expect("fits")));
        if members.len() == 1 {
            singletons.push(members[0]);
        }
        if singletons.len() == 2 {
            break;
        }
    }
    let universe = full.subset(&singletons);
    let classes = classes_for(&ram, &seq, &universe);
    assert_eq!(
        classes.num_collapsed_classes(),
        0,
        "chosen pair must analyse to the identity"
    );

    let plain = campaign(&ram, &seq, &universe).run();
    let collapsed = campaign(&ram, &seq, &universe).collapse(true).run();
    assert_eq!(collapsed.run.detections, plain.run.detections);
    assert_eq!(collapsed.run.num_faults, plain.run.num_faults);
    let stats = collapsed
        .collapse
        .expect("stats are archived even when empty");
    assert_eq!(
        (stats.total_faults, stats.simulated_faults, stats.classes),
        (universe.len(), universe.len(), 0),
        "identity collapse simulates everything and collapses nothing"
    );
    assert_consistent(&collapsed, &universe);
}

/// A detected-and-dropped representative stands for its whole class:
/// every member must appear in the fanned report exactly once, at the
/// representative's pattern and phase, and the live count must drop by
/// the full class size.
#[test]
fn dropped_representative_fans_detection_to_every_member() {
    let (ram, seq, universe) = workload();
    let classes = classes_for(&ram, &seq, &universe);
    assert!(
        classes.num_collapsed_classes() > 0,
        "workload must have a real class to exercise"
    );
    let report = campaign(&ram, &seq, &universe).collapse(true).run();
    assert_consistent(&report, &universe);

    let site_of = |f: FaultId| -> Vec<(usize, usize)> {
        report
            .detections()
            .iter()
            .filter(|d| d.fault == f)
            .map(|d| (d.pattern, d.phase))
            .collect()
    };
    let mut multi_member_detections = 0usize;
    for k in 0..classes.num_representatives() {
        let members = classes.members_of(FaultId(u32::try_from(k).expect("fits")));
        let rep_sites = site_of(members[0]);
        assert!(rep_sites.len() <= 1, "drop-on-detect allows one detection");
        for &m in members {
            assert_eq!(
                site_of(m),
                rep_sites,
                "class member {m:?} must mirror its representative {:?}",
                members[0]
            );
        }
        if members.len() > 1 && !rep_sites.is_empty() {
            multi_member_detections += members.len();
        }
    }
    assert!(
        multi_member_detections > 0,
        "at least one multi-member class must be detected for the fan-out to matter"
    );
}

/// A cooperative cancel after the first pattern leaves a consistent
/// fanned report: partial detections, full-universe fault count,
/// per-pattern counters that still reconcile, and the collapse
/// statistics intact.
#[test]
fn cancellation_keeps_fanned_counts_consistent() {
    let (ram, seq, universe) = workload();
    let total = seq.patterns().len();
    let c = campaign(&ram, &seq, &universe).collapse(true);
    let token = c.cancel_token();
    let report = c
        .on_event(move |e| {
            if matches!(e, SimEvent::PatternDone { .. }) {
                token.store(true, Ordering::Relaxed);
            }
        })
        .run();
    assert!(report.cancelled);
    assert_eq!(report.stop, StopReason::Cancelled);
    assert_eq!(report.run.patterns.len(), 1, "stopped after one pattern");
    assert_eq!(report.patterns_total, total, "offered patterns unchanged");
    let stats = report.collapse.expect("cancelled reports keep the stats");
    assert_eq!(stats.total_faults, universe.len());
    assert!(stats.simulated_faults < stats.total_faults);
    assert_consistent(&report, &universe);

    // The detections that did land before the cancel are fanned out
    // exactly like a full run's would be: a prefix of the uncancelled
    // collapsed report.
    let full = campaign(&ram, &seq, &universe).collapse(true).run();
    let prefix: Vec<_> = full
        .detections()
        .iter()
        .filter(|d| d.pattern == 0)
        .collect();
    let got: Vec<_> = report.detections().iter().collect();
    assert_eq!(got, prefix, "cancelled run's detections are a clean prefix");
}
