//! Out-of-order shard completion under `run_streaming`: the streaming
//! pool reports shards in scheduling-dependent completion order, and
//! everything downstream — fault relabelling, the canonical merge,
//! the campaign's config echo — must be invariant to it. These tests
//! oversubscribe the pool (more shards than workers, several workers
//! racing) so completion order genuinely scrambles, then pin the
//! invariants the adaptive/parallel backends rely on.
//!
//! (The satellite issue asked for a targeted test and a fix for any
//! ordering bug it flushed out; the invariants below all held —
//! `run_shard` relabels before streaming and the driver sorts by
//! shard index before merging — so this file is the lock, not a fix.)

use fmossim::campaign::{Backend, Campaign, ConcurrentConfig, Jobs, ParallelConfig, SimEvent};
use fmossim::circuits::RegisterFile;
use fmossim::concurrent::Detection;
use fmossim::faults::FaultUniverse;
use fmossim::par::{ParallelConfig as ParConfig, ParallelSim};
use fmossim::testgen::zoo::regfile_sequence;
use std::collections::HashSet;
use std::ops::ControlFlow;

fn workload() -> (RegisterFile, Vec<fmossim::concurrent::Pattern>) {
    let rf = RegisterFile::new(4, 2);
    let patterns = regfile_sequence(&rf);
    (rf, patterns)
}

/// Every report streamed from `run_streaming` must already carry
/// *parent-universe* fault ids confined to its own shard, and the
/// canonical concatenation of the streamed per-shard detections must
/// equal the merged report exactly — whatever order the pool finished
/// in.
#[test]
fn streamed_reports_are_relabelled_and_merge_canonically() {
    let (rf, patterns) = workload();
    let universe = FaultUniverse::stuck_nodes(rf.network());
    let config = ParConfig {
        jobs: Jobs::Fixed(3),
        shards: Some(7), // oversharded: workers pull from the queue
        sim: ConcurrentConfig::paper(),
        ..ParConfig::default()
    };
    let sim = ParallelSim::new(rf.network(), universe.clone(), config);
    let mut streamed: Vec<Detection> = Vec::new();
    let mut completion_order = Vec::new();
    let run = sim.run_streaming(&patterns, rf.observed_outputs(), |o, rep| {
        let shard_ids: HashSet<usize> = sim
            .plan()
            .shard(o.shard)
            .iter()
            .map(|f| f.index())
            .collect();
        for d in &rep.detections {
            assert!(
                shard_ids.contains(&d.fault.index()),
                "shard {}: detection carries id {} outside the shard — relabelling \
                 must happen before streaming",
                o.shard,
                d.fault.index()
            );
        }
        assert_eq!(o.detected, rep.detected());
        streamed.extend(rep.detections.iter().copied());
        completion_order.push(o.shard);
        ControlFlow::Continue(())
    });
    assert_eq!(completion_order.len(), 7, "every shard observed once");
    // Canonicalise the completion-ordered stream: it must equal the
    // merged report bit for bit.
    streamed.sort_by_key(|d| (d.pattern, d.phase, d.fault.index()));
    assert_eq!(streamed, run.report.detections);
    assert_eq!(run.report.num_faults, universe.len());
    // And the merged detections must match a single-shard reference.
    let reference = ParallelSim::new(
        rf.network(),
        universe,
        ParConfig {
            jobs: Jobs::Fixed(1),
            sim: ConcurrentConfig::paper(),
            ..ParConfig::default()
        },
    )
    .run(&patterns, rf.observed_outputs());
    assert_eq!(run.report.detections, reference.detections);
}

/// The campaign's config echo (resolved jobs, planned shards) and the
/// canonical report survive an early stop: breaking the queue after
/// the coverage target still echoes the *plan*, counts the whole
/// universe, and keeps the detections canonical.
#[test]
fn config_echo_is_order_independent_under_early_stop() {
    let (rf, patterns) = workload();
    let universe = FaultUniverse::stuck_nodes(rf.network());
    let mut shard_events = Vec::new();
    let report = Campaign::new(rf.network())
        .faults(universe.clone())
        .patterns(&patterns)
        .outputs(rf.observed_outputs())
        .backend(Backend::Parallel(ParallelConfig {
            jobs: Jobs::Fixed(2),
            shards: Some(6),
            sim: ConcurrentConfig::paper(),
            ..ParallelConfig::default()
        }))
        .stop_at_coverage(0.25)
        .on_event(|e| {
            if let SimEvent::ShardDone { shard, .. } = e {
                shard_events.push(shard);
            }
        })
        .run();
    // Echo reflects the plan, not the completion schedule.
    assert_eq!(report.jobs, Some(2));
    assert_eq!(report.shards, Some(6));
    assert_eq!(report.run.num_faults, universe.len());
    assert!(report.coverage() >= 0.25, "target honoured");
    // Events arrived in *some* completion order; each at most once.
    let unique: HashSet<_> = shard_events.iter().collect();
    assert_eq!(unique.len(), shard_events.len(), "no shard reported twice");
    // Whatever subset of shards ran, the report is canonical.
    let keys: Vec<_> = report
        .detections()
        .iter()
        .map(|d| (d.pattern, d.phase, d.fault.index()))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted, "early-stopped report stays canonical");
}

/// Ten repetitions of an oversubscribed pool produce ten identical
/// reports (modulo measured seconds): completion-order nondeterminism
/// must never leak into results. (One repetition can get lucky; ten
/// racing three workers over seven shards reliably explore different
/// interleavings.)
#[test]
fn repeated_racing_runs_are_bit_identical() {
    let (rf, patterns) = workload();
    let universe = FaultUniverse::stuck_nodes(rf.network());
    let run = || {
        Campaign::new(rf.network())
            .faults(universe.clone())
            .patterns(&patterns)
            .outputs(rf.observed_outputs())
            .backend(Backend::Parallel(ParallelConfig {
                jobs: Jobs::Fixed(3),
                shards: Some(7),
                sim: ConcurrentConfig::paper(),
                ..ParallelConfig::default()
            }))
            .run()
    };
    let reference = run();
    let ref_counters: Vec<_> = reference
        .run
        .patterns
        .iter()
        .map(|p| (p.detected, p.live_before, p.good_groups, p.faulty_groups))
        .collect();
    for rep in 0..9 {
        let again = run();
        assert_eq!(
            again.detections(),
            reference.detections(),
            "repetition {rep}: detections drifted with completion order"
        );
        let counters: Vec<_> = again
            .run
            .patterns
            .iter()
            .map(|p| (p.detected, p.live_before, p.good_groups, p.faulty_groups))
            .collect();
        assert_eq!(counters, ref_counters, "repetition {rep}: counters drifted");
    }
}
