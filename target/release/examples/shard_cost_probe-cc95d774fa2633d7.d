/root/repo/target/release/examples/shard_cost_probe-cc95d774fa2633d7.d: examples/shard_cost_probe.rs

/root/repo/target/release/examples/shard_cost_probe-cc95d774fa2633d7: examples/shard_cost_probe.rs

examples/shard_cost_probe.rs:
