/root/repo/target/release/examples/split_probe-b7438aef5c52df5e.d: examples/split_probe.rs

/root/repo/target/release/examples/split_probe-b7438aef5c52df5e: examples/split_probe.rs

examples/split_probe.rs:
