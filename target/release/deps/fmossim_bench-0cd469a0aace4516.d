/root/repo/target/release/deps/fmossim_bench-0cd469a0aace4516.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfmossim_bench-0cd469a0aace4516.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfmossim_bench-0cd469a0aace4516.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
