/root/repo/target/release/deps/table1-d64b19e709b57216.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-d64b19e709b57216: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
