/root/repo/target/release/deps/solver-ef15cea9a5c78a97.d: crates/bench/benches/solver.rs

/root/repo/target/release/deps/solver-ef15cea9a5c78a97: crates/bench/benches/solver.rs

crates/bench/benches/solver.rs:
