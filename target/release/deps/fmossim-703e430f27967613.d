/root/repo/target/release/deps/fmossim-703e430f27967613.d: src/lib.rs

/root/repo/target/release/deps/libfmossim-703e430f27967613.rlib: src/lib.rs

/root/repo/target/release/deps/libfmossim-703e430f27967613.rmeta: src/lib.rs

src/lib.rs:
