/root/repo/target/release/deps/fmossim_switch-ca1d2f4cfa339cdb.d: crates/switch/src/lib.rs crates/switch/src/engine.rs crates/switch/src/sim.rs crates/switch/src/solve.rs crates/switch/src/state.rs crates/switch/src/trace.rs

/root/repo/target/release/deps/libfmossim_switch-ca1d2f4cfa339cdb.rlib: crates/switch/src/lib.rs crates/switch/src/engine.rs crates/switch/src/sim.rs crates/switch/src/solve.rs crates/switch/src/state.rs crates/switch/src/trace.rs

/root/repo/target/release/deps/libfmossim_switch-ca1d2f4cfa339cdb.rmeta: crates/switch/src/lib.rs crates/switch/src/engine.rs crates/switch/src/sim.rs crates/switch/src/solve.rs crates/switch/src/state.rs crates/switch/src/trace.rs

crates/switch/src/lib.rs:
crates/switch/src/engine.rs:
crates/switch/src/sim.rs:
crates/switch/src/solve.rs:
crates/switch/src/state.rs:
crates/switch/src/trace.rs:
