/root/repo/target/release/deps/fmossim_circuits-5cc8a21bc8de08a2.d: crates/circuits/src/lib.rs crates/circuits/src/adder.rs crates/circuits/src/cells.rs crates/circuits/src/decoder.rs crates/circuits/src/ram.rs crates/circuits/src/regfile.rs

/root/repo/target/release/deps/libfmossim_circuits-5cc8a21bc8de08a2.rlib: crates/circuits/src/lib.rs crates/circuits/src/adder.rs crates/circuits/src/cells.rs crates/circuits/src/decoder.rs crates/circuits/src/ram.rs crates/circuits/src/regfile.rs

/root/repo/target/release/deps/libfmossim_circuits-5cc8a21bc8de08a2.rmeta: crates/circuits/src/lib.rs crates/circuits/src/adder.rs crates/circuits/src/cells.rs crates/circuits/src/decoder.rs crates/circuits/src/ram.rs crates/circuits/src/regfile.rs

crates/circuits/src/lib.rs:
crates/circuits/src/adder.rs:
crates/circuits/src/cells.rs:
crates/circuits/src/decoder.rs:
crates/circuits/src/ram.rs:
crates/circuits/src/regfile.rs:
