/root/repo/target/release/deps/fig1_ram64-0660ce61865f0afb.d: crates/bench/src/bin/fig1_ram64.rs

/root/repo/target/release/deps/fig1_ram64-0660ce61865f0afb: crates/bench/src/bin/fig1_ram64.rs

crates/bench/src/bin/fig1_ram64.rs:
