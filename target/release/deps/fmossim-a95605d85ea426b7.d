/root/repo/target/release/deps/fmossim-a95605d85ea426b7.d: src/bin/cli.rs

/root/repo/target/release/deps/fmossim-a95605d85ea426b7: src/bin/cli.rs

src/bin/cli.rs:
