/root/repo/target/release/deps/fmossim_faults-443635e7f81121c5.d: crates/faults/src/lib.rs crates/faults/src/fault.rs crates/faults/src/inject.rs crates/faults/src/universe.rs

/root/repo/target/release/deps/libfmossim_faults-443635e7f81121c5.rlib: crates/faults/src/lib.rs crates/faults/src/fault.rs crates/faults/src/inject.rs crates/faults/src/universe.rs

/root/repo/target/release/deps/libfmossim_faults-443635e7f81121c5.rmeta: crates/faults/src/lib.rs crates/faults/src/fault.rs crates/faults/src/inject.rs crates/faults/src/universe.rs

crates/faults/src/lib.rs:
crates/faults/src/fault.rs:
crates/faults/src/inject.rs:
crates/faults/src/universe.rs:
