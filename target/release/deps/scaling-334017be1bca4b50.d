/root/repo/target/release/deps/scaling-334017be1bca4b50.d: crates/bench/src/bin/scaling.rs

/root/repo/target/release/deps/scaling-334017be1bca4b50: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
