/root/repo/target/release/deps/fmossim_testgen-ffc3bafeb1335124.d: crates/testgen/src/lib.rs crates/testgen/src/ops.rs crates/testgen/src/random.rs crates/testgen/src/sequence.rs

/root/repo/target/release/deps/libfmossim_testgen-ffc3bafeb1335124.rlib: crates/testgen/src/lib.rs crates/testgen/src/ops.rs crates/testgen/src/random.rs crates/testgen/src/sequence.rs

/root/repo/target/release/deps/libfmossim_testgen-ffc3bafeb1335124.rmeta: crates/testgen/src/lib.rs crates/testgen/src/ops.rs crates/testgen/src/random.rs crates/testgen/src/sequence.rs

crates/testgen/src/lib.rs:
crates/testgen/src/ops.rs:
crates/testgen/src/random.rs:
crates/testgen/src/sequence.rs:
