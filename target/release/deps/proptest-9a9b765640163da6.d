/root/repo/target/release/deps/proptest-9a9b765640163da6.d: crates/shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-9a9b765640163da6.rlib: crates/shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-9a9b765640163da6.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
