/root/repo/target/release/deps/fmossim_par-d7461f3d07005526.d: crates/par/src/lib.rs crates/par/src/driver.rs crates/par/src/plan.rs

/root/repo/target/release/deps/libfmossim_par-d7461f3d07005526.rlib: crates/par/src/lib.rs crates/par/src/driver.rs crates/par/src/plan.rs

/root/repo/target/release/deps/libfmossim_par-d7461f3d07005526.rmeta: crates/par/src/lib.rs crates/par/src/driver.rs crates/par/src/plan.rs

crates/par/src/lib.rs:
crates/par/src/driver.rs:
crates/par/src/plan.rs:
