/root/repo/target/release/deps/fig3_ram256-a146440cf3337d42.d: crates/bench/src/bin/fig3_ram256.rs

/root/repo/target/release/deps/fig3_ram256-a146440cf3337d42: crates/bench/src/bin/fig3_ram256.rs

crates/bench/src/bin/fig3_ram256.rs:
