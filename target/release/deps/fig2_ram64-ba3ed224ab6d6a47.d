/root/repo/target/release/deps/fig2_ram64-ba3ed224ab6d6a47.d: crates/bench/src/bin/fig2_ram64.rs

/root/repo/target/release/deps/fig2_ram64-ba3ed224ab6d6a47: crates/bench/src/bin/fig2_ram64.rs

crates/bench/src/bin/fig2_ram64.rs:
