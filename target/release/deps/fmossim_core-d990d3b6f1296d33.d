/root/repo/target/release/deps/fmossim_core-d990d3b6f1296d33.d: crates/core/src/lib.rs crates/core/src/concurrent.rs crates/core/src/dictionary.rs crates/core/src/overlay.rs crates/core/src/pattern.rs crates/core/src/records.rs crates/core/src/report.rs crates/core/src/serial.rs

/root/repo/target/release/deps/libfmossim_core-d990d3b6f1296d33.rlib: crates/core/src/lib.rs crates/core/src/concurrent.rs crates/core/src/dictionary.rs crates/core/src/overlay.rs crates/core/src/pattern.rs crates/core/src/records.rs crates/core/src/report.rs crates/core/src/serial.rs

/root/repo/target/release/deps/libfmossim_core-d990d3b6f1296d33.rmeta: crates/core/src/lib.rs crates/core/src/concurrent.rs crates/core/src/dictionary.rs crates/core/src/overlay.rs crates/core/src/pattern.rs crates/core/src/records.rs crates/core/src/report.rs crates/core/src/serial.rs

crates/core/src/lib.rs:
crates/core/src/concurrent.rs:
crates/core/src/dictionary.rs:
crates/core/src/overlay.rs:
crates/core/src/pattern.rs:
crates/core/src/records.rs:
crates/core/src/report.rs:
crates/core/src/serial.rs:
