/root/repo/target/release/deps/scaling_par-cd2f39f255d66024.d: crates/bench/src/bin/scaling_par.rs

/root/repo/target/release/deps/scaling_par-cd2f39f255d66024: crates/bench/src/bin/scaling_par.rs

crates/bench/src/bin/scaling_par.rs:
