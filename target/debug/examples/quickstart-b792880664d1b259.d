/root/repo/target/debug/examples/quickstart-b792880664d1b259.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-b792880664d1b259.rmeta: examples/quickstart.rs

examples/quickstart.rs:
