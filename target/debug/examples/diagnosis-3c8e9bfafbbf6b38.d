/root/repo/target/debug/examples/diagnosis-3c8e9bfafbbf6b38.d: examples/diagnosis.rs Cargo.toml

/root/repo/target/debug/examples/libdiagnosis-3c8e9bfafbbf6b38.rmeta: examples/diagnosis.rs Cargo.toml

examples/diagnosis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
