/root/repo/target/debug/examples/test_quality-b252383d8f86bf35.d: examples/test_quality.rs

/root/repo/target/debug/examples/test_quality-b252383d8f86bf35: examples/test_quality.rs

examples/test_quality.rs:
