/root/repo/target/debug/examples/dbg_case71-bf21beb30fbdfad4.d: crates/core/examples/dbg_case71.rs /root/repo/crates/core/tests/fuzz_equivalence_case_gen.rs

/root/repo/target/debug/examples/dbg_case71-bf21beb30fbdfad4: crates/core/examples/dbg_case71.rs /root/repo/crates/core/tests/fuzz_equivalence_case_gen.rs

crates/core/examples/dbg_case71.rs:
/root/repo/crates/core/tests/fuzz_equivalence_case_gen.rs:
