/root/repo/target/debug/examples/test_quality-5dfbcca34e2306ef.d: examples/test_quality.rs Cargo.toml

/root/repo/target/debug/examples/libtest_quality-5dfbcca34e2306ef.rmeta: examples/test_quality.rs Cargo.toml

examples/test_quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
