/root/repo/target/debug/examples/diagnosis-0ec22b44af0519e9.d: examples/diagnosis.rs

/root/repo/target/debug/examples/diagnosis-0ec22b44af0519e9: examples/diagnosis.rs

examples/diagnosis.rs:
