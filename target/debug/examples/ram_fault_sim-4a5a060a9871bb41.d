/root/repo/target/debug/examples/ram_fault_sim-4a5a060a9871bb41.d: examples/ram_fault_sim.rs

/root/repo/target/debug/examples/libram_fault_sim-4a5a060a9871bb41.rmeta: examples/ram_fault_sim.rs

examples/ram_fault_sim.rs:
