/root/repo/target/debug/examples/test_quality-621e6bc4adc2f639.d: examples/test_quality.rs

/root/repo/target/debug/examples/libtest_quality-621e6bc4adc2f639.rmeta: examples/test_quality.rs

examples/test_quality.rs:
