/root/repo/target/debug/examples/netlist_io-7eceb07e977b22bf.d: examples/netlist_io.rs

/root/repo/target/debug/examples/netlist_io-7eceb07e977b22bf: examples/netlist_io.rs

examples/netlist_io.rs:
