/root/repo/target/debug/examples/waveforms-ae74dc245eb24f01.d: examples/waveforms.rs

/root/repo/target/debug/examples/waveforms-ae74dc245eb24f01: examples/waveforms.rs

examples/waveforms.rs:
