/root/repo/target/debug/examples/diagnosis-1e3bc1cf170a7613.d: examples/diagnosis.rs

/root/repo/target/debug/examples/libdiagnosis-1e3bc1cf170a7613.rmeta: examples/diagnosis.rs

examples/diagnosis.rs:
