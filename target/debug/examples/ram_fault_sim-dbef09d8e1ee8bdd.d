/root/repo/target/debug/examples/ram_fault_sim-dbef09d8e1ee8bdd.d: examples/ram_fault_sim.rs

/root/repo/target/debug/examples/ram_fault_sim-dbef09d8e1ee8bdd: examples/ram_fault_sim.rs

examples/ram_fault_sim.rs:
