/root/repo/target/debug/examples/netlist_io-685e65469735722b.d: examples/netlist_io.rs

/root/repo/target/debug/examples/libnetlist_io-685e65469735722b.rmeta: examples/netlist_io.rs

examples/netlist_io.rs:
