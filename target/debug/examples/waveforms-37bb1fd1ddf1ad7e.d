/root/repo/target/debug/examples/waveforms-37bb1fd1ddf1ad7e.d: examples/waveforms.rs

/root/repo/target/debug/examples/libwaveforms-37bb1fd1ddf1ad7e.rmeta: examples/waveforms.rs

examples/waveforms.rs:
