/root/repo/target/debug/examples/waveforms-a9dec05f19ea92d0.d: examples/waveforms.rs Cargo.toml

/root/repo/target/debug/examples/libwaveforms-a9dec05f19ea92d0.rmeta: examples/waveforms.rs Cargo.toml

examples/waveforms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
