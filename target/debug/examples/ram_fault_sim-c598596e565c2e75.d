/root/repo/target/debug/examples/ram_fault_sim-c598596e565c2e75.d: examples/ram_fault_sim.rs Cargo.toml

/root/repo/target/debug/examples/libram_fault_sim-c598596e565c2e75.rmeta: examples/ram_fault_sim.rs Cargo.toml

examples/ram_fault_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
