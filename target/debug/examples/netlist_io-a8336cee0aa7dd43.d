/root/repo/target/debug/examples/netlist_io-a8336cee0aa7dd43.d: examples/netlist_io.rs Cargo.toml

/root/repo/target/debug/examples/libnetlist_io-a8336cee0aa7dd43.rmeta: examples/netlist_io.rs Cargo.toml

examples/netlist_io.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
