/root/repo/target/debug/examples/quickstart-d49d21a9fb1291d6.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d49d21a9fb1291d6: examples/quickstart.rs

examples/quickstart.rs:
