/root/repo/target/debug/deps/scaling-9251b3172557a468.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/scaling-9251b3172557a468: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
