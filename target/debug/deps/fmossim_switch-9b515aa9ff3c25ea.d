/root/repo/target/debug/deps/fmossim_switch-9b515aa9ff3c25ea.d: crates/switch/src/lib.rs crates/switch/src/engine.rs crates/switch/src/sim.rs crates/switch/src/solve.rs crates/switch/src/state.rs crates/switch/src/trace.rs

/root/repo/target/debug/deps/fmossim_switch-9b515aa9ff3c25ea: crates/switch/src/lib.rs crates/switch/src/engine.rs crates/switch/src/sim.rs crates/switch/src/solve.rs crates/switch/src/state.rs crates/switch/src/trace.rs

crates/switch/src/lib.rs:
crates/switch/src/engine.rs:
crates/switch/src/sim.rs:
crates/switch/src/solve.rs:
crates/switch/src/state.rs:
crates/switch/src/trace.rs:
