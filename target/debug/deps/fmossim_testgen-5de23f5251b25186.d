/root/repo/target/debug/deps/fmossim_testgen-5de23f5251b25186.d: crates/testgen/src/lib.rs crates/testgen/src/ops.rs crates/testgen/src/random.rs crates/testgen/src/sequence.rs

/root/repo/target/debug/deps/fmossim_testgen-5de23f5251b25186: crates/testgen/src/lib.rs crates/testgen/src/ops.rs crates/testgen/src/random.rs crates/testgen/src/sequence.rs

crates/testgen/src/lib.rs:
crates/testgen/src/ops.rs:
crates/testgen/src/random.rs:
crates/testgen/src/sequence.rs:
