/root/repo/target/debug/deps/lattice_stress-47f861f78f857e5c.d: crates/switch/tests/lattice_stress.rs

/root/repo/target/debug/deps/lattice_stress-47f861f78f857e5c: crates/switch/tests/lattice_stress.rs

crates/switch/tests/lattice_stress.rs:
