/root/repo/target/debug/deps/fmossim-dc396ebce15635d2.d: src/lib.rs

/root/repo/target/debug/deps/libfmossim-dc396ebce15635d2.rlib: src/lib.rs

/root/repo/target/debug/deps/libfmossim-dc396ebce15635d2.rmeta: src/lib.rs

src/lib.rs:
