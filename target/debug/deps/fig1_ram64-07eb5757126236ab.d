/root/repo/target/debug/deps/fig1_ram64-07eb5757126236ab.d: crates/bench/src/bin/fig1_ram64.rs

/root/repo/target/debug/deps/fig1_ram64-07eb5757126236ab: crates/bench/src/bin/fig1_ram64.rs

crates/bench/src/bin/fig1_ram64.rs:
