/root/repo/target/debug/deps/proptest_solver-ca6c110ceaaf3826.d: crates/switch/tests/proptest_solver.rs

/root/repo/target/debug/deps/libproptest_solver-ca6c110ceaaf3826.rmeta: crates/switch/tests/proptest_solver.rs

crates/switch/tests/proptest_solver.rs:
