/root/repo/target/debug/deps/dbg_web-01e0b28d6e3545a0.d: tests/dbg_web.rs

/root/repo/target/debug/deps/dbg_web-01e0b28d6e3545a0: tests/dbg_web.rs

tests/dbg_web.rs:
