/root/repo/target/debug/deps/proptest_roundtrip-acf3f00920b581ae.d: crates/netlist/tests/proptest_roundtrip.rs

/root/repo/target/debug/deps/proptest_roundtrip-acf3f00920b581ae: crates/netlist/tests/proptest_roundtrip.rs

crates/netlist/tests/proptest_roundtrip.rs:
