/root/repo/target/debug/deps/register_file-3c5e13edde25cb9e.d: tests/register_file.rs

/root/repo/target/debug/deps/libregister_file-3c5e13edde25cb9e.rmeta: tests/register_file.rs

tests/register_file.rs:
