/root/repo/target/debug/deps/proptest-e0888c25984311f5.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-e0888c25984311f5.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
