/root/repo/target/debug/deps/adder_fault_sim-5c41f6fd16eb391b.d: tests/adder_fault_sim.rs

/root/repo/target/debug/deps/libadder_fault_sim-5c41f6fd16eb391b.rmeta: tests/adder_fault_sim.rs

tests/adder_fault_sim.rs:
