/root/repo/target/debug/deps/fmossim_bench-4a39e1dba3b17302.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfmossim_bench-4a39e1dba3b17302.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfmossim_bench-4a39e1dba3b17302.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
