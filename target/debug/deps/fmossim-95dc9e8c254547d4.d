/root/repo/target/debug/deps/fmossim-95dc9e8c254547d4.d: src/bin/cli.rs

/root/repo/target/debug/deps/fmossim-95dc9e8c254547d4: src/bin/cli.rs

src/bin/cli.rs:
