/root/repo/target/debug/deps/scaling_par-286d18bd6701c285.d: crates/bench/src/bin/scaling_par.rs

/root/repo/target/debug/deps/scaling_par-286d18bd6701c285: crates/bench/src/bin/scaling_par.rs

crates/bench/src/bin/scaling_par.rs:
