/root/repo/target/debug/deps/proptest_solver-37e6d6916e8c93c4.d: crates/switch/tests/proptest_solver.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_solver-37e6d6916e8c93c4.rmeta: crates/switch/tests/proptest_solver.rs Cargo.toml

crates/switch/tests/proptest_solver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
