/root/repo/target/debug/deps/fig2_ram64-94df7fb4a64e6233.d: crates/bench/src/bin/fig2_ram64.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_ram64-94df7fb4a64e6233.rmeta: crates/bench/src/bin/fig2_ram64.rs Cargo.toml

crates/bench/src/bin/fig2_ram64.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
