/root/repo/target/debug/deps/fmossim_circuits-78cfe323e0deca0c.d: crates/circuits/src/lib.rs crates/circuits/src/adder.rs crates/circuits/src/cells.rs crates/circuits/src/decoder.rs crates/circuits/src/ram.rs crates/circuits/src/regfile.rs Cargo.toml

/root/repo/target/debug/deps/libfmossim_circuits-78cfe323e0deca0c.rmeta: crates/circuits/src/lib.rs crates/circuits/src/adder.rs crates/circuits/src/cells.rs crates/circuits/src/decoder.rs crates/circuits/src/ram.rs crates/circuits/src/regfile.rs Cargo.toml

crates/circuits/src/lib.rs:
crates/circuits/src/adder.rs:
crates/circuits/src/cells.rs:
crates/circuits/src/decoder.rs:
crates/circuits/src/ram.rs:
crates/circuits/src/regfile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
