/root/repo/target/debug/deps/fmossim_par-83de4e5c08de8097.d: crates/par/src/lib.rs crates/par/src/driver.rs crates/par/src/plan.rs Cargo.toml

/root/repo/target/debug/deps/libfmossim_par-83de4e5c08de8097.rmeta: crates/par/src/lib.rs crates/par/src/driver.rs crates/par/src/plan.rs Cargo.toml

crates/par/src/lib.rs:
crates/par/src/driver.rs:
crates/par/src/plan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
