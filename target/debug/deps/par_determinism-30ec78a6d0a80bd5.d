/root/repo/target/debug/deps/par_determinism-30ec78a6d0a80bd5.d: tests/par_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libpar_determinism-30ec78a6d0a80bd5.rmeta: tests/par_determinism.rs Cargo.toml

tests/par_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
