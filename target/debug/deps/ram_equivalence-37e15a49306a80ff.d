/root/repo/target/debug/deps/ram_equivalence-37e15a49306a80ff.d: tests/ram_equivalence.rs

/root/repo/target/debug/deps/ram_equivalence-37e15a49306a80ff: tests/ram_equivalence.rs

tests/ram_equivalence.rs:
