/root/repo/target/debug/deps/table1-3ac21f2e13a8b5f9.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-3ac21f2e13a8b5f9.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
