/root/repo/target/debug/deps/fmossim_faults-c4dc181ac1223158.d: crates/faults/src/lib.rs crates/faults/src/fault.rs crates/faults/src/inject.rs crates/faults/src/universe.rs

/root/repo/target/debug/deps/libfmossim_faults-c4dc181ac1223158.rmeta: crates/faults/src/lib.rs crates/faults/src/fault.rs crates/faults/src/inject.rs crates/faults/src/universe.rs

crates/faults/src/lib.rs:
crates/faults/src/fault.rs:
crates/faults/src/inject.rs:
crates/faults/src/universe.rs:
