/root/repo/target/debug/deps/ram_coverage-3298a9035fd0a945.d: tests/ram_coverage.rs

/root/repo/target/debug/deps/ram_coverage-3298a9035fd0a945: tests/ram_coverage.rs

tests/ram_coverage.rs:
