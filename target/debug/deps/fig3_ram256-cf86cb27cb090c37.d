/root/repo/target/debug/deps/fig3_ram256-cf86cb27cb090c37.d: crates/bench/src/bin/fig3_ram256.rs

/root/repo/target/debug/deps/libfig3_ram256-cf86cb27cb090c37.rmeta: crates/bench/src/bin/fig3_ram256.rs

crates/bench/src/bin/fig3_ram256.rs:
