/root/repo/target/debug/deps/x_initialization-e5c3c6e4f08b5e6c.d: tests/x_initialization.rs Cargo.toml

/root/repo/target/debug/deps/libx_initialization-e5c3c6e4f08b5e6c.rmeta: tests/x_initialization.rs Cargo.toml

tests/x_initialization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
