/root/repo/target/debug/deps/register_file-71ed4dd31d07f2d7.d: tests/register_file.rs

/root/repo/target/debug/deps/register_file-71ed4dd31d07f2d7: tests/register_file.rs

tests/register_file.rs:
