/root/repo/target/debug/deps/fmossim_par-5d2427a28a573c2d.d: crates/par/src/lib.rs crates/par/src/driver.rs crates/par/src/plan.rs Cargo.toml

/root/repo/target/debug/deps/libfmossim_par-5d2427a28a573c2d.rmeta: crates/par/src/lib.rs crates/par/src/driver.rs crates/par/src/plan.rs Cargo.toml

crates/par/src/lib.rs:
crates/par/src/driver.rs:
crates/par/src/plan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
