/root/repo/target/debug/deps/table1-8012aef77a7effa9.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-8012aef77a7effa9: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
