/root/repo/target/debug/deps/transistor_faults-2b3739e12352aa4a.d: tests/transistor_faults.rs Cargo.toml

/root/repo/target/debug/deps/libtransistor_faults-2b3739e12352aa4a.rmeta: tests/transistor_faults.rs Cargo.toml

tests/transistor_faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
