/root/repo/target/debug/deps/scaling-6c91383c48deb1b3.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/scaling-6c91383c48deb1b3: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
