/root/repo/target/debug/deps/fmossim_bench-90a675588d0f5090.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfmossim_bench-90a675588d0f5090.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
