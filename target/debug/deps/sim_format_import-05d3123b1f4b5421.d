/root/repo/target/debug/deps/sim_format_import-05d3123b1f4b5421.d: tests/sim_format_import.rs

/root/repo/target/debug/deps/sim_format_import-05d3123b1f4b5421: tests/sim_format_import.rs

tests/sim_format_import.rs:
