/root/repo/target/debug/deps/netlist_roundtrip-55b22dc1e7ef763a.d: tests/netlist_roundtrip.rs

/root/repo/target/debug/deps/netlist_roundtrip-55b22dc1e7ef763a: tests/netlist_roundtrip.rs

tests/netlist_roundtrip.rs:
