/root/repo/target/debug/deps/fig2_ram64-aa31fa2faa1cb057.d: crates/bench/src/bin/fig2_ram64.rs

/root/repo/target/debug/deps/fig2_ram64-aa31fa2faa1cb057: crates/bench/src/bin/fig2_ram64.rs

crates/bench/src/bin/fig2_ram64.rs:
