/root/repo/target/debug/deps/fmossim_faults-4fdf924ff360883a.d: crates/faults/src/lib.rs crates/faults/src/fault.rs crates/faults/src/inject.rs crates/faults/src/universe.rs

/root/repo/target/debug/deps/libfmossim_faults-4fdf924ff360883a.rmeta: crates/faults/src/lib.rs crates/faults/src/fault.rs crates/faults/src/inject.rs crates/faults/src/universe.rs

crates/faults/src/lib.rs:
crates/faults/src/fault.rs:
crates/faults/src/inject.rs:
crates/faults/src/universe.rs:
