/root/repo/target/debug/deps/fmossim_par-6c0354296c3de3b1.d: crates/par/src/lib.rs crates/par/src/driver.rs crates/par/src/plan.rs

/root/repo/target/debug/deps/fmossim_par-6c0354296c3de3b1: crates/par/src/lib.rs crates/par/src/driver.rs crates/par/src/plan.rs

crates/par/src/lib.rs:
crates/par/src/driver.rs:
crates/par/src/plan.rs:
