/root/repo/target/debug/deps/fmossim_netlist-1f8425f7cf96cee6.d: crates/netlist/src/lib.rs crates/netlist/src/error.rs crates/netlist/src/format.rs crates/netlist/src/ids.rs crates/netlist/src/logic.rs crates/netlist/src/network.rs crates/netlist/src/simformat.rs crates/netlist/src/stats.rs crates/netlist/src/strength.rs crates/netlist/src/ttype.rs

/root/repo/target/debug/deps/fmossim_netlist-1f8425f7cf96cee6: crates/netlist/src/lib.rs crates/netlist/src/error.rs crates/netlist/src/format.rs crates/netlist/src/ids.rs crates/netlist/src/logic.rs crates/netlist/src/network.rs crates/netlist/src/simformat.rs crates/netlist/src/stats.rs crates/netlist/src/strength.rs crates/netlist/src/ttype.rs

crates/netlist/src/lib.rs:
crates/netlist/src/error.rs:
crates/netlist/src/format.rs:
crates/netlist/src/ids.rs:
crates/netlist/src/logic.rs:
crates/netlist/src/network.rs:
crates/netlist/src/simformat.rs:
crates/netlist/src/stats.rs:
crates/netlist/src/strength.rs:
crates/netlist/src/ttype.rs:
