/root/repo/target/debug/deps/proptest-eb4106ad5d87ae69.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-eb4106ad5d87ae69: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
