/root/repo/target/debug/deps/fig2_ram64-84251b0a701140fb.d: crates/bench/src/bin/fig2_ram64.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_ram64-84251b0a701140fb.rmeta: crates/bench/src/bin/fig2_ram64.rs Cargo.toml

crates/bench/src/bin/fig2_ram64.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
