/root/repo/target/debug/deps/fmossim-a16efcab2495ebaf.d: src/lib.rs

/root/repo/target/debug/deps/fmossim-a16efcab2495ebaf: src/lib.rs

src/lib.rs:
