/root/repo/target/debug/deps/proptest_records-37b5fa06cecced60.d: crates/core/tests/proptest_records.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_records-37b5fa06cecced60.rmeta: crates/core/tests/proptest_records.rs Cargo.toml

crates/core/tests/proptest_records.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
