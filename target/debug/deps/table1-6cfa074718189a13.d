/root/repo/target/debug/deps/table1-6cfa074718189a13.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-6cfa074718189a13.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
