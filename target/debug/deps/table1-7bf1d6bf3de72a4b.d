/root/repo/target/debug/deps/table1-7bf1d6bf3de72a4b.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-7bf1d6bf3de72a4b: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
