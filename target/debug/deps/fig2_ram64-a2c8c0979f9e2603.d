/root/repo/target/debug/deps/fig2_ram64-a2c8c0979f9e2603.d: crates/bench/src/bin/fig2_ram64.rs

/root/repo/target/debug/deps/libfig2_ram64-a2c8c0979f9e2603.rmeta: crates/bench/src/bin/fig2_ram64.rs

crates/bench/src/bin/fig2_ram64.rs:
