/root/repo/target/debug/deps/fmossim_core-bc7862e117aa35c9.d: crates/core/src/lib.rs crates/core/src/concurrent.rs crates/core/src/dictionary.rs crates/core/src/overlay.rs crates/core/src/pattern.rs crates/core/src/records.rs crates/core/src/report.rs crates/core/src/serial.rs Cargo.toml

/root/repo/target/debug/deps/libfmossim_core-bc7862e117aa35c9.rmeta: crates/core/src/lib.rs crates/core/src/concurrent.rs crates/core/src/dictionary.rs crates/core/src/overlay.rs crates/core/src/pattern.rs crates/core/src/records.rs crates/core/src/report.rs crates/core/src/serial.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/concurrent.rs:
crates/core/src/dictionary.rs:
crates/core/src/overlay.rs:
crates/core/src/pattern.rs:
crates/core/src/records.rs:
crates/core/src/report.rs:
crates/core/src/serial.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
