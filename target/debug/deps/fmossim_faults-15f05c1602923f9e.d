/root/repo/target/debug/deps/fmossim_faults-15f05c1602923f9e.d: crates/faults/src/lib.rs crates/faults/src/fault.rs crates/faults/src/inject.rs crates/faults/src/universe.rs

/root/repo/target/debug/deps/fmossim_faults-15f05c1602923f9e: crates/faults/src/lib.rs crates/faults/src/fault.rs crates/faults/src/inject.rs crates/faults/src/universe.rs

crates/faults/src/lib.rs:
crates/faults/src/fault.rs:
crates/faults/src/inject.rs:
crates/faults/src/universe.rs:
