/root/repo/target/debug/deps/equivalence-f48c783a296cc3ce.d: crates/core/tests/equivalence.rs

/root/repo/target/debug/deps/libequivalence-f48c783a296cc3ce.rmeta: crates/core/tests/equivalence.rs

crates/core/tests/equivalence.rs:
