/root/repo/target/debug/deps/fmossim_switch-8f442bb99786dfce.d: crates/switch/src/lib.rs crates/switch/src/engine.rs crates/switch/src/sim.rs crates/switch/src/solve.rs crates/switch/src/state.rs crates/switch/src/trace.rs

/root/repo/target/debug/deps/libfmossim_switch-8f442bb99786dfce.rmeta: crates/switch/src/lib.rs crates/switch/src/engine.rs crates/switch/src/sim.rs crates/switch/src/solve.rs crates/switch/src/state.rs crates/switch/src/trace.rs

crates/switch/src/lib.rs:
crates/switch/src/engine.rs:
crates/switch/src/sim.rs:
crates/switch/src/solve.rs:
crates/switch/src/state.rs:
crates/switch/src/trace.rs:
