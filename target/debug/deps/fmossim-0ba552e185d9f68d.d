/root/repo/target/debug/deps/fmossim-0ba552e185d9f68d.d: src/bin/cli.rs

/root/repo/target/debug/deps/libfmossim-0ba552e185d9f68d.rmeta: src/bin/cli.rs

src/bin/cli.rs:
