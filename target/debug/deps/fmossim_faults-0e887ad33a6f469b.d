/root/repo/target/debug/deps/fmossim_faults-0e887ad33a6f469b.d: crates/faults/src/lib.rs crates/faults/src/fault.rs crates/faults/src/inject.rs crates/faults/src/universe.rs Cargo.toml

/root/repo/target/debug/deps/libfmossim_faults-0e887ad33a6f469b.rmeta: crates/faults/src/lib.rs crates/faults/src/fault.rs crates/faults/src/inject.rs crates/faults/src/universe.rs Cargo.toml

crates/faults/src/lib.rs:
crates/faults/src/fault.rs:
crates/faults/src/inject.rs:
crates/faults/src/universe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
