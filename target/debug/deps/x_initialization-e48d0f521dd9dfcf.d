/root/repo/target/debug/deps/x_initialization-e48d0f521dd9dfcf.d: tests/x_initialization.rs

/root/repo/target/debug/deps/libx_initialization-e48d0f521dd9dfcf.rmeta: tests/x_initialization.rs

tests/x_initialization.rs:
