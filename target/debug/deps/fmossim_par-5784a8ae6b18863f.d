/root/repo/target/debug/deps/fmossim_par-5784a8ae6b18863f.d: crates/par/src/lib.rs crates/par/src/driver.rs crates/par/src/plan.rs

/root/repo/target/debug/deps/libfmossim_par-5784a8ae6b18863f.rmeta: crates/par/src/lib.rs crates/par/src/driver.rs crates/par/src/plan.rs

crates/par/src/lib.rs:
crates/par/src/driver.rs:
crates/par/src/plan.rs:
