/root/repo/target/debug/deps/fmossim_switch-3e56b598b0a11290.d: crates/switch/src/lib.rs crates/switch/src/engine.rs crates/switch/src/sim.rs crates/switch/src/solve.rs crates/switch/src/state.rs crates/switch/src/trace.rs

/root/repo/target/debug/deps/libfmossim_switch-3e56b598b0a11290.rlib: crates/switch/src/lib.rs crates/switch/src/engine.rs crates/switch/src/sim.rs crates/switch/src/solve.rs crates/switch/src/state.rs crates/switch/src/trace.rs

/root/repo/target/debug/deps/libfmossim_switch-3e56b598b0a11290.rmeta: crates/switch/src/lib.rs crates/switch/src/engine.rs crates/switch/src/sim.rs crates/switch/src/solve.rs crates/switch/src/state.rs crates/switch/src/trace.rs

crates/switch/src/lib.rs:
crates/switch/src/engine.rs:
crates/switch/src/sim.rs:
crates/switch/src/solve.rs:
crates/switch/src/state.rs:
crates/switch/src/trace.rs:
