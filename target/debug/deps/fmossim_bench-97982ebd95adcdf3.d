/root/repo/target/debug/deps/fmossim_bench-97982ebd95adcdf3.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfmossim_bench-97982ebd95adcdf3.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
