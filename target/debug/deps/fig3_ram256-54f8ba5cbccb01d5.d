/root/repo/target/debug/deps/fig3_ram256-54f8ba5cbccb01d5.d: crates/bench/src/bin/fig3_ram256.rs

/root/repo/target/debug/deps/fig3_ram256-54f8ba5cbccb01d5: crates/bench/src/bin/fig3_ram256.rs

crates/bench/src/bin/fig3_ram256.rs:
