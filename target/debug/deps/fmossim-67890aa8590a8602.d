/root/repo/target/debug/deps/fmossim-67890aa8590a8602.d: src/lib.rs

/root/repo/target/debug/deps/libfmossim-67890aa8590a8602.rmeta: src/lib.rs

src/lib.rs:
