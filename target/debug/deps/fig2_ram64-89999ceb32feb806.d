/root/repo/target/debug/deps/fig2_ram64-89999ceb32feb806.d: crates/bench/src/bin/fig2_ram64.rs

/root/repo/target/debug/deps/libfig2_ram64-89999ceb32feb806.rmeta: crates/bench/src/bin/fig2_ram64.rs

crates/bench/src/bin/fig2_ram64.rs:
