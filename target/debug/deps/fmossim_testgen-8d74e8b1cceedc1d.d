/root/repo/target/debug/deps/fmossim_testgen-8d74e8b1cceedc1d.d: crates/testgen/src/lib.rs crates/testgen/src/ops.rs crates/testgen/src/random.rs crates/testgen/src/sequence.rs

/root/repo/target/debug/deps/libfmossim_testgen-8d74e8b1cceedc1d.rmeta: crates/testgen/src/lib.rs crates/testgen/src/ops.rs crates/testgen/src/random.rs crates/testgen/src/sequence.rs

crates/testgen/src/lib.rs:
crates/testgen/src/ops.rs:
crates/testgen/src/random.rs:
crates/testgen/src/sequence.rs:
