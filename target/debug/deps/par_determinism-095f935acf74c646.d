/root/repo/target/debug/deps/par_determinism-095f935acf74c646.d: tests/par_determinism.rs

/root/repo/target/debug/deps/par_determinism-095f935acf74c646: tests/par_determinism.rs

tests/par_determinism.rs:
