/root/repo/target/debug/deps/x_initialization-8e78048ad82a0fc7.d: tests/x_initialization.rs

/root/repo/target/debug/deps/x_initialization-8e78048ad82a0fc7: tests/x_initialization.rs

tests/x_initialization.rs:
