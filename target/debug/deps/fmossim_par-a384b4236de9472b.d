/root/repo/target/debug/deps/fmossim_par-a384b4236de9472b.d: crates/par/src/lib.rs crates/par/src/driver.rs crates/par/src/plan.rs

/root/repo/target/debug/deps/libfmossim_par-a384b4236de9472b.rmeta: crates/par/src/lib.rs crates/par/src/driver.rs crates/par/src/plan.rs

crates/par/src/lib.rs:
crates/par/src/driver.rs:
crates/par/src/plan.rs:
