/root/repo/target/debug/deps/fmossim_par-ed74690f383603e4.d: crates/par/src/lib.rs crates/par/src/driver.rs crates/par/src/plan.rs

/root/repo/target/debug/deps/libfmossim_par-ed74690f383603e4.rlib: crates/par/src/lib.rs crates/par/src/driver.rs crates/par/src/plan.rs

/root/repo/target/debug/deps/libfmossim_par-ed74690f383603e4.rmeta: crates/par/src/lib.rs crates/par/src/driver.rs crates/par/src/plan.rs

crates/par/src/lib.rs:
crates/par/src/driver.rs:
crates/par/src/plan.rs:
