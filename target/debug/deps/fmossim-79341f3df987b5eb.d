/root/repo/target/debug/deps/fmossim-79341f3df987b5eb.d: src/lib.rs

/root/repo/target/debug/deps/libfmossim-79341f3df987b5eb.rmeta: src/lib.rs

src/lib.rs:
