/root/repo/target/debug/deps/sim_format_import-5bdcdaa0d77c250e.d: tests/sim_format_import.rs Cargo.toml

/root/repo/target/debug/deps/libsim_format_import-5bdcdaa0d77c250e.rmeta: tests/sim_format_import.rs Cargo.toml

tests/sim_format_import.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
