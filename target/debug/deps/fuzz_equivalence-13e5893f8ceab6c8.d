/root/repo/target/debug/deps/fuzz_equivalence-13e5893f8ceab6c8.d: crates/core/tests/fuzz_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libfuzz_equivalence-13e5893f8ceab6c8.rmeta: crates/core/tests/fuzz_equivalence.rs Cargo.toml

crates/core/tests/fuzz_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
