/root/repo/target/debug/deps/proptest_records-919ce658e1870c4c.d: crates/core/tests/proptest_records.rs

/root/repo/target/debug/deps/proptest_records-919ce658e1870c4c: crates/core/tests/proptest_records.rs

crates/core/tests/proptest_records.rs:
