/root/repo/target/debug/deps/lattice_stress-588e89b940d53139.d: crates/switch/tests/lattice_stress.rs Cargo.toml

/root/repo/target/debug/deps/liblattice_stress-588e89b940d53139.rmeta: crates/switch/tests/lattice_stress.rs Cargo.toml

crates/switch/tests/lattice_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
