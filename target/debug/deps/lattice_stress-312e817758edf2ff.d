/root/repo/target/debug/deps/lattice_stress-312e817758edf2ff.d: crates/switch/tests/lattice_stress.rs

/root/repo/target/debug/deps/liblattice_stress-312e817758edf2ff.rmeta: crates/switch/tests/lattice_stress.rs

crates/switch/tests/lattice_stress.rs:
