/root/repo/target/debug/deps/fmossim_faults-70b3ca1cbf48f464.d: crates/faults/src/lib.rs crates/faults/src/fault.rs crates/faults/src/inject.rs crates/faults/src/universe.rs

/root/repo/target/debug/deps/libfmossim_faults-70b3ca1cbf48f464.rlib: crates/faults/src/lib.rs crates/faults/src/fault.rs crates/faults/src/inject.rs crates/faults/src/universe.rs

/root/repo/target/debug/deps/libfmossim_faults-70b3ca1cbf48f464.rmeta: crates/faults/src/lib.rs crates/faults/src/fault.rs crates/faults/src/inject.rs crates/faults/src/universe.rs

crates/faults/src/lib.rs:
crates/faults/src/fault.rs:
crates/faults/src/inject.rs:
crates/faults/src/universe.rs:
