/root/repo/target/debug/deps/ram_coverage-4196bc594d66cab9.d: tests/ram_coverage.rs Cargo.toml

/root/repo/target/debug/deps/libram_coverage-4196bc594d66cab9.rmeta: tests/ram_coverage.rs Cargo.toml

tests/ram_coverage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
