/root/repo/target/debug/deps/fmossim_bench-7a838fbba20ab785.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/fmossim_bench-7a838fbba20ab785: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
