/root/repo/target/debug/deps/figures-b2f54d3e1b1d19a3.d: crates/bench/benches/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-b2f54d3e1b1d19a3.rmeta: crates/bench/benches/figures.rs Cargo.toml

crates/bench/benches/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
