/root/repo/target/debug/deps/scaling-6c4179a1bca4b457.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/libscaling-6c4179a1bca4b457.rmeta: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
