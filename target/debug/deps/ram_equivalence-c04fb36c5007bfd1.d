/root/repo/target/debug/deps/ram_equivalence-c04fb36c5007bfd1.d: tests/ram_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libram_equivalence-c04fb36c5007bfd1.rmeta: tests/ram_equivalence.rs Cargo.toml

tests/ram_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
