/root/repo/target/debug/deps/fig2_ram64-58c8f8d5d2f60161.d: crates/bench/src/bin/fig2_ram64.rs

/root/repo/target/debug/deps/fig2_ram64-58c8f8d5d2f60161: crates/bench/src/bin/fig2_ram64.rs

crates/bench/src/bin/fig2_ram64.rs:
