/root/repo/target/debug/deps/fuzz_equivalence-4b598e341453b8dd.d: crates/core/tests/fuzz_equivalence.rs

/root/repo/target/debug/deps/libfuzz_equivalence-4b598e341453b8dd.rmeta: crates/core/tests/fuzz_equivalence.rs

crates/core/tests/fuzz_equivalence.rs:
