/root/repo/target/debug/deps/scaling_par-dbced3764b67497a.d: crates/bench/src/bin/scaling_par.rs

/root/repo/target/debug/deps/libscaling_par-dbced3764b67497a.rmeta: crates/bench/src/bin/scaling_par.rs

crates/bench/src/bin/scaling_par.rs:
