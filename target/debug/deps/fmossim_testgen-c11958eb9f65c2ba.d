/root/repo/target/debug/deps/fmossim_testgen-c11958eb9f65c2ba.d: crates/testgen/src/lib.rs crates/testgen/src/ops.rs crates/testgen/src/random.rs crates/testgen/src/sequence.rs

/root/repo/target/debug/deps/libfmossim_testgen-c11958eb9f65c2ba.rmeta: crates/testgen/src/lib.rs crates/testgen/src/ops.rs crates/testgen/src/random.rs crates/testgen/src/sequence.rs

crates/testgen/src/lib.rs:
crates/testgen/src/ops.rs:
crates/testgen/src/random.rs:
crates/testgen/src/sequence.rs:
