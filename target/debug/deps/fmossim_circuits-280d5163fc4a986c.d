/root/repo/target/debug/deps/fmossim_circuits-280d5163fc4a986c.d: crates/circuits/src/lib.rs crates/circuits/src/adder.rs crates/circuits/src/cells.rs crates/circuits/src/decoder.rs crates/circuits/src/ram.rs crates/circuits/src/regfile.rs

/root/repo/target/debug/deps/libfmossim_circuits-280d5163fc4a986c.rmeta: crates/circuits/src/lib.rs crates/circuits/src/adder.rs crates/circuits/src/cells.rs crates/circuits/src/decoder.rs crates/circuits/src/ram.rs crates/circuits/src/regfile.rs

crates/circuits/src/lib.rs:
crates/circuits/src/adder.rs:
crates/circuits/src/cells.rs:
crates/circuits/src/decoder.rs:
crates/circuits/src/ram.rs:
crates/circuits/src/regfile.rs:
