/root/repo/target/debug/deps/sim_format_import-fab2629d7cb49a2d.d: tests/sim_format_import.rs

/root/repo/target/debug/deps/libsim_format_import-fab2629d7cb49a2d.rmeta: tests/sim_format_import.rs

tests/sim_format_import.rs:
