/root/repo/target/debug/deps/fmossim_switch-4f701ac6905ae6e5.d: crates/switch/src/lib.rs crates/switch/src/engine.rs crates/switch/src/sim.rs crates/switch/src/solve.rs crates/switch/src/state.rs crates/switch/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libfmossim_switch-4f701ac6905ae6e5.rmeta: crates/switch/src/lib.rs crates/switch/src/engine.rs crates/switch/src/sim.rs crates/switch/src/solve.rs crates/switch/src/state.rs crates/switch/src/trace.rs Cargo.toml

crates/switch/src/lib.rs:
crates/switch/src/engine.rs:
crates/switch/src/sim.rs:
crates/switch/src/solve.rs:
crates/switch/src/state.rs:
crates/switch/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
