/root/repo/target/debug/deps/fig1_ram64-9181cf59b9130702.d: crates/bench/src/bin/fig1_ram64.rs

/root/repo/target/debug/deps/fig1_ram64-9181cf59b9130702: crates/bench/src/bin/fig1_ram64.rs

crates/bench/src/bin/fig1_ram64.rs:
