/root/repo/target/debug/deps/ram_equivalence-85e8995e71ef3a81.d: tests/ram_equivalence.rs

/root/repo/target/debug/deps/libram_equivalence-85e8995e71ef3a81.rmeta: tests/ram_equivalence.rs

tests/ram_equivalence.rs:
