/root/repo/target/debug/deps/proptest_solver-07b1e546f091d740.d: crates/switch/tests/proptest_solver.rs

/root/repo/target/debug/deps/proptest_solver-07b1e546f091d740: crates/switch/tests/proptest_solver.rs

crates/switch/tests/proptest_solver.rs:
