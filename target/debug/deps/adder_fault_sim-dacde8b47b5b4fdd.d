/root/repo/target/debug/deps/adder_fault_sim-dacde8b47b5b4fdd.d: tests/adder_fault_sim.rs Cargo.toml

/root/repo/target/debug/deps/libadder_fault_sim-dacde8b47b5b4fdd.rmeta: tests/adder_fault_sim.rs Cargo.toml

tests/adder_fault_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
