/root/repo/target/debug/deps/proptest_roundtrip-d89418b67909faf0.d: crates/netlist/tests/proptest_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_roundtrip-d89418b67909faf0.rmeta: crates/netlist/tests/proptest_roundtrip.rs Cargo.toml

crates/netlist/tests/proptest_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
