/root/repo/target/debug/deps/fmossim_core-13e1de0d61cd8659.d: crates/core/src/lib.rs crates/core/src/concurrent.rs crates/core/src/dictionary.rs crates/core/src/overlay.rs crates/core/src/pattern.rs crates/core/src/records.rs crates/core/src/report.rs crates/core/src/serial.rs

/root/repo/target/debug/deps/fmossim_core-13e1de0d61cd8659: crates/core/src/lib.rs crates/core/src/concurrent.rs crates/core/src/dictionary.rs crates/core/src/overlay.rs crates/core/src/pattern.rs crates/core/src/records.rs crates/core/src/report.rs crates/core/src/serial.rs

crates/core/src/lib.rs:
crates/core/src/concurrent.rs:
crates/core/src/dictionary.rs:
crates/core/src/overlay.rs:
crates/core/src/pattern.rs:
crates/core/src/records.rs:
crates/core/src/report.rs:
crates/core/src/serial.rs:
