/root/repo/target/debug/deps/fmossim_circuits-9eb892ea321db4da.d: crates/circuits/src/lib.rs crates/circuits/src/adder.rs crates/circuits/src/cells.rs crates/circuits/src/decoder.rs crates/circuits/src/ram.rs crates/circuits/src/regfile.rs

/root/repo/target/debug/deps/libfmossim_circuits-9eb892ea321db4da.rmeta: crates/circuits/src/lib.rs crates/circuits/src/adder.rs crates/circuits/src/cells.rs crates/circuits/src/decoder.rs crates/circuits/src/ram.rs crates/circuits/src/regfile.rs

crates/circuits/src/lib.rs:
crates/circuits/src/adder.rs:
crates/circuits/src/cells.rs:
crates/circuits/src/decoder.rs:
crates/circuits/src/ram.rs:
crates/circuits/src/regfile.rs:
