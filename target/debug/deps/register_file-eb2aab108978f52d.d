/root/repo/target/debug/deps/register_file-eb2aab108978f52d.d: tests/register_file.rs Cargo.toml

/root/repo/target/debug/deps/libregister_file-eb2aab108978f52d.rmeta: tests/register_file.rs Cargo.toml

tests/register_file.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
