/root/repo/target/debug/deps/fmossim_circuits-b592b938f6ef0c48.d: crates/circuits/src/lib.rs crates/circuits/src/adder.rs crates/circuits/src/cells.rs crates/circuits/src/decoder.rs crates/circuits/src/ram.rs crates/circuits/src/regfile.rs

/root/repo/target/debug/deps/fmossim_circuits-b592b938f6ef0c48: crates/circuits/src/lib.rs crates/circuits/src/adder.rs crates/circuits/src/cells.rs crates/circuits/src/decoder.rs crates/circuits/src/ram.rs crates/circuits/src/regfile.rs

crates/circuits/src/lib.rs:
crates/circuits/src/adder.rs:
crates/circuits/src/cells.rs:
crates/circuits/src/decoder.rs:
crates/circuits/src/ram.rs:
crates/circuits/src/regfile.rs:
