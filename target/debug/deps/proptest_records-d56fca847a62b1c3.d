/root/repo/target/debug/deps/proptest_records-d56fca847a62b1c3.d: crates/core/tests/proptest_records.rs

/root/repo/target/debug/deps/libproptest_records-d56fca847a62b1c3.rmeta: crates/core/tests/proptest_records.rs

crates/core/tests/proptest_records.rs:
