/root/repo/target/debug/deps/equivalence-22f4ed010bfd9c43.d: crates/core/tests/equivalence.rs

/root/repo/target/debug/deps/equivalence-22f4ed010bfd9c43: crates/core/tests/equivalence.rs

crates/core/tests/equivalence.rs:
