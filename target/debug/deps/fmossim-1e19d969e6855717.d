/root/repo/target/debug/deps/fmossim-1e19d969e6855717.d: src/bin/cli.rs

/root/repo/target/debug/deps/fmossim-1e19d969e6855717: src/bin/cli.rs

src/bin/cli.rs:
