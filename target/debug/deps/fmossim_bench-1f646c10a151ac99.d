/root/repo/target/debug/deps/fmossim_bench-1f646c10a151ac99.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfmossim_bench-1f646c10a151ac99.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
