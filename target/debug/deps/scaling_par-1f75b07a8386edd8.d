/root/repo/target/debug/deps/scaling_par-1f75b07a8386edd8.d: crates/bench/src/bin/scaling_par.rs Cargo.toml

/root/repo/target/debug/deps/libscaling_par-1f75b07a8386edd8.rmeta: crates/bench/src/bin/scaling_par.rs Cargo.toml

crates/bench/src/bin/scaling_par.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
