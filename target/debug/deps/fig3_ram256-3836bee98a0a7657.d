/root/repo/target/debug/deps/fig3_ram256-3836bee98a0a7657.d: crates/bench/src/bin/fig3_ram256.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_ram256-3836bee98a0a7657.rmeta: crates/bench/src/bin/fig3_ram256.rs Cargo.toml

crates/bench/src/bin/fig3_ram256.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
