/root/repo/target/debug/deps/scaling-f208722fa68e933b.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/libscaling-f208722fa68e933b.rmeta: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
