/root/repo/target/debug/deps/fig1_ram64-d8c96a4fa65486c2.d: crates/bench/src/bin/fig1_ram64.rs

/root/repo/target/debug/deps/libfig1_ram64-d8c96a4fa65486c2.rmeta: crates/bench/src/bin/fig1_ram64.rs

crates/bench/src/bin/fig1_ram64.rs:
