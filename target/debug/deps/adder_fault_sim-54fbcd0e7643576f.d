/root/repo/target/debug/deps/adder_fault_sim-54fbcd0e7643576f.d: tests/adder_fault_sim.rs

/root/repo/target/debug/deps/adder_fault_sim-54fbcd0e7643576f: tests/adder_fault_sim.rs

tests/adder_fault_sim.rs:
