/root/repo/target/debug/deps/fmossim-a26674ffe7e83a0d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfmossim-a26674ffe7e83a0d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
