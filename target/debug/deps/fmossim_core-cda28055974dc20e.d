/root/repo/target/debug/deps/fmossim_core-cda28055974dc20e.d: crates/core/src/lib.rs crates/core/src/concurrent.rs crates/core/src/dictionary.rs crates/core/src/overlay.rs crates/core/src/pattern.rs crates/core/src/records.rs crates/core/src/report.rs crates/core/src/serial.rs

/root/repo/target/debug/deps/libfmossim_core-cda28055974dc20e.rmeta: crates/core/src/lib.rs crates/core/src/concurrent.rs crates/core/src/dictionary.rs crates/core/src/overlay.rs crates/core/src/pattern.rs crates/core/src/records.rs crates/core/src/report.rs crates/core/src/serial.rs

crates/core/src/lib.rs:
crates/core/src/concurrent.rs:
crates/core/src/dictionary.rs:
crates/core/src/overlay.rs:
crates/core/src/pattern.rs:
crates/core/src/records.rs:
crates/core/src/report.rs:
crates/core/src/serial.rs:
