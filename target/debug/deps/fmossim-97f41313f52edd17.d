/root/repo/target/debug/deps/fmossim-97f41313f52edd17.d: src/bin/cli.rs Cargo.toml

/root/repo/target/debug/deps/libfmossim-97f41313f52edd17.rmeta: src/bin/cli.rs Cargo.toml

src/bin/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
