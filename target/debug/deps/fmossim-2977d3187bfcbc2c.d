/root/repo/target/debug/deps/fmossim-2977d3187bfcbc2c.d: src/bin/cli.rs

/root/repo/target/debug/deps/libfmossim-2977d3187bfcbc2c.rmeta: src/bin/cli.rs

src/bin/cli.rs:
