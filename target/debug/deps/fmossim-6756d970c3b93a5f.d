/root/repo/target/debug/deps/fmossim-6756d970c3b93a5f.d: src/bin/cli.rs Cargo.toml

/root/repo/target/debug/deps/libfmossim-6756d970c3b93a5f.rmeta: src/bin/cli.rs Cargo.toml

src/bin/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
