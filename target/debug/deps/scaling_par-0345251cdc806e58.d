/root/repo/target/debug/deps/scaling_par-0345251cdc806e58.d: crates/bench/src/bin/scaling_par.rs Cargo.toml

/root/repo/target/debug/deps/libscaling_par-0345251cdc806e58.rmeta: crates/bench/src/bin/scaling_par.rs Cargo.toml

crates/bench/src/bin/scaling_par.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
