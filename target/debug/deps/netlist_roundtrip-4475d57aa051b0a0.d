/root/repo/target/debug/deps/netlist_roundtrip-4475d57aa051b0a0.d: tests/netlist_roundtrip.rs

/root/repo/target/debug/deps/libnetlist_roundtrip-4475d57aa051b0a0.rmeta: tests/netlist_roundtrip.rs

tests/netlist_roundtrip.rs:
