/root/repo/target/debug/deps/scaling_par-7666bdd0f84609f6.d: crates/bench/src/bin/scaling_par.rs

/root/repo/target/debug/deps/libscaling_par-7666bdd0f84609f6.rmeta: crates/bench/src/bin/scaling_par.rs

crates/bench/src/bin/scaling_par.rs:
