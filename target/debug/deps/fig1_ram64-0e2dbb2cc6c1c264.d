/root/repo/target/debug/deps/fig1_ram64-0e2dbb2cc6c1c264.d: crates/bench/src/bin/fig1_ram64.rs

/root/repo/target/debug/deps/libfig1_ram64-0e2dbb2cc6c1c264.rmeta: crates/bench/src/bin/fig1_ram64.rs

crates/bench/src/bin/fig1_ram64.rs:
