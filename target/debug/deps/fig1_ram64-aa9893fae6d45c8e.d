/root/repo/target/debug/deps/fig1_ram64-aa9893fae6d45c8e.d: crates/bench/src/bin/fig1_ram64.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_ram64-aa9893fae6d45c8e.rmeta: crates/bench/src/bin/fig1_ram64.rs Cargo.toml

crates/bench/src/bin/fig1_ram64.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
