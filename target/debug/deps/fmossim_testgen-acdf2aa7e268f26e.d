/root/repo/target/debug/deps/fmossim_testgen-acdf2aa7e268f26e.d: crates/testgen/src/lib.rs crates/testgen/src/ops.rs crates/testgen/src/random.rs crates/testgen/src/sequence.rs Cargo.toml

/root/repo/target/debug/deps/libfmossim_testgen-acdf2aa7e268f26e.rmeta: crates/testgen/src/lib.rs crates/testgen/src/ops.rs crates/testgen/src/random.rs crates/testgen/src/sequence.rs Cargo.toml

crates/testgen/src/lib.rs:
crates/testgen/src/ops.rs:
crates/testgen/src/random.rs:
crates/testgen/src/sequence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
