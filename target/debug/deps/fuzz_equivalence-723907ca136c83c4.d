/root/repo/target/debug/deps/fuzz_equivalence-723907ca136c83c4.d: crates/core/tests/fuzz_equivalence.rs

/root/repo/target/debug/deps/fuzz_equivalence-723907ca136c83c4: crates/core/tests/fuzz_equivalence.rs

crates/core/tests/fuzz_equivalence.rs:
