/root/repo/target/debug/deps/scaling_par-4acc16b8b414a95f.d: crates/bench/src/bin/scaling_par.rs

/root/repo/target/debug/deps/scaling_par-4acc16b8b414a95f: crates/bench/src/bin/scaling_par.rs

crates/bench/src/bin/scaling_par.rs:
