/root/repo/target/debug/deps/par_determinism-e205ae5f06419b8e.d: tests/par_determinism.rs

/root/repo/target/debug/deps/libpar_determinism-e205ae5f06419b8e.rmeta: tests/par_determinism.rs

tests/par_determinism.rs:
