/root/repo/target/debug/deps/fmossim_netlist-694192ca7e280440.d: crates/netlist/src/lib.rs crates/netlist/src/error.rs crates/netlist/src/format.rs crates/netlist/src/ids.rs crates/netlist/src/logic.rs crates/netlist/src/network.rs crates/netlist/src/simformat.rs crates/netlist/src/stats.rs crates/netlist/src/strength.rs crates/netlist/src/ttype.rs

/root/repo/target/debug/deps/libfmossim_netlist-694192ca7e280440.rmeta: crates/netlist/src/lib.rs crates/netlist/src/error.rs crates/netlist/src/format.rs crates/netlist/src/ids.rs crates/netlist/src/logic.rs crates/netlist/src/network.rs crates/netlist/src/simformat.rs crates/netlist/src/stats.rs crates/netlist/src/strength.rs crates/netlist/src/ttype.rs

crates/netlist/src/lib.rs:
crates/netlist/src/error.rs:
crates/netlist/src/format.rs:
crates/netlist/src/ids.rs:
crates/netlist/src/logic.rs:
crates/netlist/src/network.rs:
crates/netlist/src/simformat.rs:
crates/netlist/src/stats.rs:
crates/netlist/src/strength.rs:
crates/netlist/src/ttype.rs:
