/root/repo/target/debug/deps/fmossim_testgen-e360eaac06d789c3.d: crates/testgen/src/lib.rs crates/testgen/src/ops.rs crates/testgen/src/random.rs crates/testgen/src/sequence.rs

/root/repo/target/debug/deps/libfmossim_testgen-e360eaac06d789c3.rlib: crates/testgen/src/lib.rs crates/testgen/src/ops.rs crates/testgen/src/random.rs crates/testgen/src/sequence.rs

/root/repo/target/debug/deps/libfmossim_testgen-e360eaac06d789c3.rmeta: crates/testgen/src/lib.rs crates/testgen/src/ops.rs crates/testgen/src/random.rs crates/testgen/src/sequence.rs

crates/testgen/src/lib.rs:
crates/testgen/src/ops.rs:
crates/testgen/src/random.rs:
crates/testgen/src/sequence.rs:
