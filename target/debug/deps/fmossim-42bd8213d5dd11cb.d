/root/repo/target/debug/deps/fmossim-42bd8213d5dd11cb.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfmossim-42bd8213d5dd11cb.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
