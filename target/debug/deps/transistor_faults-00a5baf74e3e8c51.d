/root/repo/target/debug/deps/transistor_faults-00a5baf74e3e8c51.d: tests/transistor_faults.rs

/root/repo/target/debug/deps/transistor_faults-00a5baf74e3e8c51: tests/transistor_faults.rs

tests/transistor_faults.rs:
