/root/repo/target/debug/deps/solver-6d730f194b480f92.d: crates/bench/benches/solver.rs

/root/repo/target/debug/deps/libsolver-6d730f194b480f92.rmeta: crates/bench/benches/solver.rs

crates/bench/benches/solver.rs:
