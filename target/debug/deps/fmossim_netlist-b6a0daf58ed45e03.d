/root/repo/target/debug/deps/fmossim_netlist-b6a0daf58ed45e03.d: crates/netlist/src/lib.rs crates/netlist/src/error.rs crates/netlist/src/format.rs crates/netlist/src/ids.rs crates/netlist/src/logic.rs crates/netlist/src/network.rs crates/netlist/src/simformat.rs crates/netlist/src/stats.rs crates/netlist/src/strength.rs crates/netlist/src/ttype.rs Cargo.toml

/root/repo/target/debug/deps/libfmossim_netlist-b6a0daf58ed45e03.rmeta: crates/netlist/src/lib.rs crates/netlist/src/error.rs crates/netlist/src/format.rs crates/netlist/src/ids.rs crates/netlist/src/logic.rs crates/netlist/src/network.rs crates/netlist/src/simformat.rs crates/netlist/src/stats.rs crates/netlist/src/strength.rs crates/netlist/src/ttype.rs Cargo.toml

crates/netlist/src/lib.rs:
crates/netlist/src/error.rs:
crates/netlist/src/format.rs:
crates/netlist/src/ids.rs:
crates/netlist/src/logic.rs:
crates/netlist/src/network.rs:
crates/netlist/src/simformat.rs:
crates/netlist/src/stats.rs:
crates/netlist/src/strength.rs:
crates/netlist/src/ttype.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
