/root/repo/target/debug/deps/transistor_faults-3c595091dd9902d3.d: tests/transistor_faults.rs

/root/repo/target/debug/deps/libtransistor_faults-3c595091dd9902d3.rmeta: tests/transistor_faults.rs

tests/transistor_faults.rs:
