/root/repo/target/debug/deps/figures-eba3f131a8258915.d: crates/bench/benches/figures.rs

/root/repo/target/debug/deps/libfigures-eba3f131a8258915.rmeta: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
