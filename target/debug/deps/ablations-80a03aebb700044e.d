/root/repo/target/debug/deps/ablations-80a03aebb700044e.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/libablations-80a03aebb700044e.rmeta: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
