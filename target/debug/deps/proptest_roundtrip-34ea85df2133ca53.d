/root/repo/target/debug/deps/proptest_roundtrip-34ea85df2133ca53.d: crates/netlist/tests/proptest_roundtrip.rs

/root/repo/target/debug/deps/libproptest_roundtrip-34ea85df2133ca53.rmeta: crates/netlist/tests/proptest_roundtrip.rs

crates/netlist/tests/proptest_roundtrip.rs:
