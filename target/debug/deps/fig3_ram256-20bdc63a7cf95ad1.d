/root/repo/target/debug/deps/fig3_ram256-20bdc63a7cf95ad1.d: crates/bench/src/bin/fig3_ram256.rs

/root/repo/target/debug/deps/fig3_ram256-20bdc63a7cf95ad1: crates/bench/src/bin/fig3_ram256.rs

crates/bench/src/bin/fig3_ram256.rs:
