/root/repo/target/debug/deps/netlist_roundtrip-2a3bf51579757a39.d: tests/netlist_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libnetlist_roundtrip-2a3bf51579757a39.rmeta: tests/netlist_roundtrip.rs Cargo.toml

tests/netlist_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
