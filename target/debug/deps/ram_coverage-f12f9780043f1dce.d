/root/repo/target/debug/deps/ram_coverage-f12f9780043f1dce.d: tests/ram_coverage.rs

/root/repo/target/debug/deps/libram_coverage-f12f9780043f1dce.rmeta: tests/ram_coverage.rs

tests/ram_coverage.rs:
