/root/repo/target/debug/deps/fig3_ram256-bd2dfe7f3f920f9d.d: crates/bench/src/bin/fig3_ram256.rs

/root/repo/target/debug/deps/libfig3_ram256-bd2dfe7f3f920f9d.rmeta: crates/bench/src/bin/fig3_ram256.rs

crates/bench/src/bin/fig3_ram256.rs:
