/root/repo/target/debug/deps/proptest-87a2f94227ccb3b1.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-87a2f94227ccb3b1.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
