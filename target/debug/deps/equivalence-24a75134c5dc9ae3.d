/root/repo/target/debug/deps/equivalence-24a75134c5dc9ae3.d: crates/core/tests/equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libequivalence-24a75134c5dc9ae3.rmeta: crates/core/tests/equivalence.rs Cargo.toml

crates/core/tests/equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
