//! # FMOSSIM — a concurrent switch-level fault simulator
//!
//! Rust reproduction of Bryant & Schuster, *Performance Evaluation of
//! FMOSSIM, a Concurrent Switch-Level Fault Simulator*, DAC 1985.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`campaign`] — **the front door**: the [`campaign::Campaign`]
//!   builder runs one fault-grading workload on any execution strategy
//!   (serial / concurrent / fault-parallel) behind one
//!   [`campaign::Backend`] seam, with streaming
//!   [`campaign::SimEvent`] observers, run control (coverage targets,
//!   pattern limits), and a JSON-serialisable
//!   [`campaign::CampaignReport`].
//! * [`netlist`] — the switch-level network model (nodes, transistors,
//!   strengths, text netlist format).
//! * [`sim`] — the switch-level logic simulator (MOSSIM II equivalent):
//!   steady-state solver, vicinities, event-driven unit-delay loop.
//! * [`faults`] — fault models, fault-universe enumeration, sampling.
//! * [`concurrent`] — the concurrent fault simulator (the paper's
//!   contribution) and the serial baseline; use these directly for
//!   phase-level control, [`campaign`] for whole runs.
//! * [`circuits`] — circuit generators: cell library and the paper's
//!   RAM64/RAM256 dynamic-RAM benchmark circuits.
//! * [`testgen`] — test-pattern generation: clock phases, marching
//!   memory tests, the paper's exact test sequences.
//! * [`par`] — fault-parallel execution: sharded fault universes on a
//!   `std::thread` worker pool ([`par::ParallelSim`]), with merged
//!   reports identical to single-threaded runs; worker counts can be
//!   autotuned from the workload ([`par::Jobs::Auto`]), and the good
//!   machine is recorded once per run ([`concurrent::GoodTape`]) and
//!   replayed in every shard instead of re-simulated.
//! * [`telemetry`] — hierarchical counters/gauges/histograms
//!   ([`telemetry::Registry`]) recorded by every layer above, merged
//!   across shards, snapshotted into
//!   [`campaign::CampaignReport::metrics`], and exportable as
//!   Prometheus text or JSON; attach one with
//!   [`campaign::Campaign::with_telemetry`] or the CLI's
//!   `--metrics <path>` flag.
//!
//! Beyond the paper: fault dictionaries and diagnosis
//! ([`concurrent::FaultDictionary`]), multi-fault circuits
//! ([`concurrent::ConcurrentSim::new_multi`]), VCD waveform export
//! ([`sim::Trace`]), Berkeley `.sim` import ([`netlist::parse_sim`]),
//! and a CLI (`cargo run --bin fmossim -- --help`).
//!
//! ## Quickstart
//!
//! ```
//! use fmossim::circuits::Ram;
//! use fmossim::testgen::TestSequence;
//! use fmossim::faults::FaultUniverse;
//! use fmossim::campaign::{Backend, Campaign, ConcurrentConfig};
//!
//! // The paper's RAM64 is Ram::new(8, 8); a 4x4 keeps the doctest fast.
//! let ram = Ram::new(4, 4);
//! let seq = TestSequence::full(&ram);
//! let report = Campaign::new(ram.network())
//!     .faults(FaultUniverse::stuck_nodes(ram.network()))
//!     .patterns(seq.patterns())
//!     .outputs(ram.observed_outputs())
//!     .backend(Backend::Concurrent(ConcurrentConfig::paper()))
//!     .run();
//! assert!(report.detected() > 0);
//! println!("{}", report.to_json()); // the stable campaign artifact
//! ```
//!
//! Switching the same campaign to the serial baseline or a
//! fault-parallel pool is one `backend(..)` line; see
//! [`campaign`] for run control and streaming observers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fmossim_campaign as campaign;
pub use fmossim_circuits as circuits;
pub use fmossim_core as concurrent;
pub use fmossim_faults as faults;
pub use fmossim_netlist as netlist;
pub use fmossim_par as par;
pub use fmossim_serve as serve;
pub use fmossim_switch as sim;
pub use fmossim_telemetry as telemetry;
pub use fmossim_testgen as testgen;
