//! `fmossim` — command-line front end to the simulator.
//!
//! ```text
//! fmossim stats    <netlist.snl>
//! fmossim zoo
//! fmossim gen      ram <rows> <cols> | regfile <words> <bits>
//! fmossim stim     ram <rows> <cols> [--march-only]
//! fmossim sim      <netlist.snl> --stim <file> [--watch N1,N2,…]
//! fmossim faultsim <netlist.snl> --stim <file> --outputs N1[,N2…]
//! fmossim faultsim --circuit <zoo-name>
//!                  [--backend serial|concurrent|parallel|adaptive] [--json]
//!                  [--universe stuck-nodes|stuck-transistors|all]
//!                  [--sample K] [--seed S] [--serial]
//!                  [--stop-at-coverage F] [--pattern-limit N]
//!                  [--jobs N|auto] [--shard-strategy round-robin|contiguous|cost]
//!                  [--replay on|off] [--batch N] [--packing on|off]
//!                  [--collapse on|off] [--metrics <path>[.prom|.json]]
//! ```
//!
//! The stimulus file is line oriented: each non-comment line is one
//! pattern; phases are separated by `;`; a phase is whitespace-
//! separated `NAME=VALUE` input assignments (`0`, `1` or `X`). Every
//! phase is observed (strobed). `#` starts a comment.
//!
//! ```text
//! # cycle the clocks, then read
//! A0=1 WE=1 DIN=1 PHI1=1 ; PHI1=0 ; PHI2=1 ; PHI2=0 ; PHI3=1 ; PHI3=0
//! ```

use fmossim::campaign::{
    universe_from_spec, AdaptiveConfig, Backend, Campaign, ConcurrentConfig, Jobs, ParallelConfig,
    Registry, SerialConfig, ShardStrategy,
};
use fmossim::circuits::{Ram, RegisterFile};
use fmossim::concurrent::{Pattern, Phase};
use fmossim::netlist::{parse_netlist, write_netlist, Logic, Network, NetworkStats, NodeId};
use fmossim::sim::LogicSim;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("stats") => cmd_stats(&args[1..]),
        Some("zoo") => cmd_zoo(),
        Some("gen") => cmd_gen(&args[1..]),
        Some("stim") => cmd_stim(&args[1..]),
        Some("sim") => cmd_sim(&args[1..]),
        Some("faultsim") => cmd_faultsim(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("cancel") => cmd_cancel(&args[1..]),
        Some("--help" | "-h") | None => {
            eprint!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
fmossim — concurrent switch-level fault simulator (Bryant & Schuster, DAC 1985)

usage:
  fmossim stats    <netlist.snl>
  fmossim zoo
  fmossim gen      ram <rows> <cols> | regfile <words> <bits>
  fmossim stim     ram <rows> <cols> [--march-only]
  fmossim sim      <netlist.snl> --stim <file> [--watch A,B,...]
  fmossim faultsim <netlist.snl> --stim <file> --outputs A[,B...]
  fmossim faultsim --circuit <zoo-name>
                   [--backend serial|concurrent|parallel|adaptive] [--json]
                   [--universe stuck-nodes|stuck-transistors|all]
                   [--sample K] [--seed S] [--serial]
                   [--stop-at-coverage F] [--pattern-limit N]
                   [--jobs N|auto] [--shard-strategy round-robin|contiguous|cost]
                   [--replay on|off] [--batch N] [--packing on|off]
                   [--collapse on|off] [--metrics <path>[.prom|.json]]
  fmossim serve    [--addr HOST:PORT] [--workers N] [--cache-mb N]
                   [--default-shards N]
  fmossim submit   --addr HOST:PORT --circuit <zoo-name>
  fmossim submit   --addr HOST:PORT <netlist.snl> --stim <file> --outputs A[,B...]
                   [--universe stuck-nodes|stuck-transistors|all]
                   [--shards N] [--collapse on|off] [--name LABEL]
                   [--stop-at-coverage F] [--no-wait] [--json]
  fmossim cancel   --addr HOST:PORT <job-id>

`zoo` lists the benchmark circuit zoo; `faultsim --circuit <name>`
runs a campaign on a zoo member (circuit, stimulus and observed
outputs all built in-process — no netlist or stimulus file needed).

faultsim runs one campaign on the chosen backend: `concurrent` (the
paper's algorithm, default), `serial` (the per-fault baseline),
`parallel` (fault-parallel shards on a worker pool; implied by
--jobs), or `adaptive` (the parallel strategy run in pattern batches
of --batch N, dropping detected faults and re-planning shards from
measured shard times between batches). Results are identical for
every backend, job count, and batch size.

--jobs N picks the worker count, `auto` sizes the pool from the
workload (and, on the adaptive backend, re-sizes it between batches).
--replay on (the default) records the good machine once and replays
the tape in every shard; --replay off re-settles the good circuit per
shard (A/B measurement; not available on the adaptive backend, whose
batching is built on the tape). The two options resolve in this
order: --jobs is resolved first (auto -> a worker count sized from
the workload), the shard count follows from the resolved workers, and
--replay on then takes effect only when more than one shard exists —
with --jobs auto on a small workload the pool resolves to one worker,
one shard, and the tape is skipped even under --replay on (recording
would cost a good pass without saving one). The post-run `plan:` line
echoes what actually resolved.

--packing on enables the bit-parallel packed evaluation path on the
concurrent-family backends (concurrent, parallel, adaptive): fault
machines triggered by the same events settle together, up to 64 per
bitwise pass over two-plane ternary words. Results are bit-identical
to --packing off; only the work counters in the telemetry differ. The
default is off.

--collapse on runs static fault collapsing before the campaign:
structurally equivalent faults (parallel twins, series stuck-opens
with pinned outer nodes, dominated drivers, never-detectable faults)
are grouped into classes, one representative per class is simulated
— with dynamic activity gating enabled on the concurrent-family
backends — and every detection is fanned back out to the full class
at report time. The reported detections, coverage, and fault count
are bit-identical to --collapse off; only the simulated work shrinks.
The default is off. --collapse on combines with --stop-at-coverage:
the target is evaluated over the full fault universe (each
representative's detection weighted by its class size), so the
collapsed run stops at the same point as the uncollapsed campaign it
mirrors.

--json emits the machine-readable campaign report instead of text;
--stop-at-coverage / --pattern-limit cut the run short; --serial
appends a serial-baseline comparison run.

`serve` starts the long-running campaign server (see docs/SERVER.md):
jobs queue onto one shared worker pool of --workers threads, progress
streams over SSE, and recorded good tapes are cached across
submissions in a --cache-mb byte budget. The bound address is printed
to stdout (--addr defaults to 127.0.0.1:0, a free port). `submit`
posts a campaign — a zoo circuit or a netlist + stimulus file — then
streams its lifecycle events and prints the finished report summary
(--no-wait returns after the job id; --json prints the full status
document). `cancel` requests a cooperative cancel; the job's report
arrives with `cancelled: true` and the detections found so far.

--metrics <path> attaches a telemetry registry to the campaign and
writes its final snapshot to <path> after the run: Prometheus text
exposition format by default (and for a `.prom` suffix), JSON for a
`.json` suffix. The same snapshot is embedded in the --json report's
`metrics` block. Telemetry never changes results; without --metrics
the null registry records nothing.
";

/// Default `--batch` for the adaptive backend, re-exported for the
/// usage text.
const DEFAULT_BATCH: usize = fmossim::campaign::DEFAULT_BATCH_PATTERNS;

fn load(path: &str) -> Result<Network, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let net = parse_netlist(&text).map_err(|e| format!("{path}: {e}"))?;
    net.validate().map_err(|e| format!("{path}: {e}"))?;
    Ok(net)
}

fn opt<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn node_list(net: &Network, spec: &str) -> Result<Vec<NodeId>, String> {
    spec.split(',')
        .map(|name| {
            net.find_node(name.trim())
                .ok_or_else(|| format!("no node named `{name}`"))
        })
        .collect()
}

/// Parses the stimulus format: one pattern per line, phases split by
/// `;`, assignments `NAME=0|1|X`.
fn parse_stim(net: &Network, text: &str) -> Result<Vec<Pattern>, String> {
    let mut patterns = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let body = raw.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut phases = Vec::new();
        for chunk in body.split(';') {
            let mut inputs = Vec::new();
            for assign in chunk.split_whitespace() {
                let (name, val) = assign.split_once('=').ok_or_else(|| {
                    format!("stim line {}: `{assign}` is not NAME=VALUE", lineno + 1)
                })?;
                let node = net
                    .find_node(name)
                    .ok_or_else(|| format!("stim line {}: no node `{name}`", lineno + 1))?;
                let v = (val.len() == 1)
                    .then(|| Logic::from_char(val.chars().next().expect("one char")))
                    .flatten()
                    .ok_or_else(|| format!("stim line {}: bad value `{val}`", lineno + 1))?;
                inputs.push((node, v));
            }
            phases.push(Phase::strobe(inputs));
        }
        patterns.push(Pattern::labelled(phases, format!("line {}", lineno + 1)));
    }
    if patterns.is_empty() {
        return Err("stimulus file contains no patterns".into());
    }
    Ok(patterns)
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("stats needs a netlist path")?;
    let net = load(path)?;
    println!("{}", NetworkStats::of(&net));
    println!("inputs:");
    for id in net.input_ids() {
        let node = net.node(id);
        let class = match node.class {
            fmossim::netlist::NodeClass::Input(v) => v,
            fmossim::netlist::NodeClass::Storage(_) => unreachable!("input_ids yields inputs"),
        };
        println!("  {} (default {})", node.name, class);
    }
    Ok(())
}

/// Lists the benchmark circuit zoo with per-circuit statistics — the
/// registry `faultsim --circuit` and the `evalsuite` bench bin run on.
fn cmd_zoo() -> Result<(), String> {
    println!(
        "{:<12} {:>11} {:>7} {:>8} {:>8}  description",
        "name", "transistors", "nodes", "patterns", "outputs"
    );
    for (name, _) in fmossim::testgen::ZOO {
        let w = fmossim::testgen::build_zoo(name)?;
        let stats = w.stats();
        println!(
            "{:<12} {:>11} {:>7} {:>8} {:>8}  {}",
            w.name,
            stats.transistors,
            stats.nodes,
            w.patterns.len(),
            w.outputs.len(),
            w.description,
        );
    }
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    match args {
        [kind, a, b] if kind == "ram" => {
            let rows: usize = a.parse().map_err(|_| "rows must be a number")?;
            let cols: usize = b.parse().map_err(|_| "cols must be a number")?;
            let ram = Ram::new(rows, cols);
            print!("{}", write_netlist(ram.network()));
            eprintln!("generated RAM{}: {}", rows * cols, ram.stats());
            Ok(())
        }
        [kind, a, b] if kind == "regfile" => {
            let words: usize = a.parse().map_err(|_| "words must be a number")?;
            let bits: usize = b.parse().map_err(|_| "bits must be a number")?;
            let rf = RegisterFile::new(words, bits);
            print!("{}", write_netlist(rf.network()));
            eprintln!("generated register file: {}", rf.stats());
            Ok(())
        }
        _ => Err("gen needs: ram <rows> <cols> | regfile <words> <bits>".into()),
    }
}

/// Emits the paper's test sequence for a generated RAM in the
/// stimulus-file format, so `gen` + `stim` + `faultsim` compose:
///
/// ```text
/// fmossim gen  ram 8 8 > ram64.snl
/// fmossim stim ram 8 8 > ram64.stim
/// fmossim faultsim ram64.snl --stim ram64.stim --outputs DOUT --jobs 4
/// ```
fn cmd_stim(args: &[String]) -> Result<(), String> {
    let [kind, a, b, ..] = args else {
        return Err("stim needs: ram <rows> <cols> [--march-only]".into());
    };
    if kind != "ram" {
        return Err(format!("stim supports `ram`, not `{kind}`"));
    }
    let rows: usize = a.parse().map_err(|_| "rows must be a number")?;
    let cols: usize = b.parse().map_err(|_| "cols must be a number")?;
    let ram = Ram::new(rows, cols);
    let seq = if flag(args, "--march-only") {
        fmossim::testgen::TestSequence::march_only(&ram)
    } else {
        fmossim::testgen::TestSequence::full(&ram)
    };
    let net = ram.network();
    for pattern in seq.patterns() {
        let phases: Vec<String> = pattern
            .phases
            .iter()
            .map(|phase| {
                phase
                    .inputs
                    .iter()
                    .map(|&(n, v)| format!("{}={v}", net.node(n).name))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        println!("{} # {}", phases.join(" ; "), pattern.label);
    }
    eprintln!(
        "emitted {} patterns for RAM{} ({} rows x {} cols)",
        seq.len(),
        rows * cols,
        rows,
        cols
    );
    Ok(())
}

fn cmd_sim(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("sim needs a netlist path")?;
    let net = load(path)?;
    let stim_path = opt(args, "--stim").ok_or("sim needs --stim <file>")?;
    let stim_text =
        std::fs::read_to_string(stim_path).map_err(|e| format!("cannot read stim: {e}"))?;
    let patterns = parse_stim(&net, &stim_text)?;
    let watch: Vec<NodeId> = match opt(args, "--watch") {
        Some(spec) => node_list(&net, spec)?,
        None => net.storage_ids().collect(),
    };

    let mut sim = LogicSim::new(&net);
    sim.settle();
    println!(
        "pattern,{}",
        watch
            .iter()
            .map(|&n| net.node(n).name.clone())
            .collect::<Vec<_>>()
            .join(",")
    );
    for (pi, pattern) in patterns.iter().enumerate() {
        for phase in &pattern.phases {
            for &(n, v) in &phase.inputs {
                sim.set_input(n, v);
            }
            sim.settle();
        }
        let row: Vec<String> = watch.iter().map(|&n| sim.get(n).to_string()).collect();
        println!("{},{}", pi + 1, row.join(","));
    }
    Ok(())
}

fn cmd_faultsim(args: &[String]) -> Result<(), String> {
    let (net, patterns, outputs) = if let Some(name) = opt(args, "--circuit") {
        // Zoo mode: the registry supplies circuit, stimulus and
        // observed outputs; the file-based options would be ignored,
        // so mixing the modes is rejected rather than half-honoured.
        // A netlist path is any positional argument — scan past each
        // flag (and its value, for the value-taking ones) so a path
        // is caught in any position, not just the first.
        let mut i = 0;
        while i < args.len() {
            if !args[i].starts_with("--") {
                return Err(format!(
                    "--circuit replaces the netlist path; pass one or the other (got `{}`)",
                    args[i]
                ));
            }
            i += if matches!(args[i].as_str(), "--json" | "--serial") {
                1
            } else {
                2 // value-taking flag: skip its argument too
            };
        }
        for conflicting in ["--stim", "--outputs"] {
            if opt(args, conflicting).is_some() {
                return Err(format!(
                    "{conflicting} has no effect with --circuit: the zoo workload carries \
                     its own stimulus and observed outputs"
                ));
            }
        }
        let w = fmossim::testgen::build_zoo(name)?;
        eprintln!("zoo circuit {}: {}", w.name, w.stats());
        (w.net, w.patterns, w.outputs)
    } else {
        let path = args
            .first()
            .ok_or("faultsim needs a netlist path (or --circuit <zoo-name>; see `fmossim zoo`)")?;
        let net = load(path)?;
        let stim_path = opt(args, "--stim").ok_or("faultsim needs --stim <file>")?;
        let stim_text =
            std::fs::read_to_string(stim_path).map_err(|e| format!("cannot read stim: {e}"))?;
        let patterns = parse_stim(&net, &stim_text)?;
        let outputs = node_list(
            &net,
            opt(args, "--outputs").ok_or("faultsim needs --outputs")?,
        )?;
        (net, patterns, outputs)
    };

    let mut universe = universe_from_spec(&net, opt(args, "--universe").unwrap_or("stuck-nodes"))?;
    let seed: u64 = opt(args, "--seed")
        .map(|s| s.parse().map_err(|_| "--seed takes a number"))
        .transpose()?
        .unwrap_or(fmossim::faults::DEFAULT_SEED);
    if let Some(k) = opt(args, "--sample") {
        let k: usize = k.parse().map_err(|_| "--sample takes a number")?;
        universe = universe.sample(k, seed);
    }
    let jobs = opt(args, "--jobs")
        .map(|s| {
            Jobs::parse(s).ok_or(format!(
                "--jobs takes a positive number or `auto`, not `{s}`"
            ))
        })
        .transpose()?;
    let strategy = match opt(args, "--shard-strategy") {
        None => ShardStrategy::default(),
        Some(spec) => ShardStrategy::parse(spec).ok_or_else(|| {
            format!("unknown shard strategy `{spec}` (round-robin|contiguous|cost)")
        })?,
    };
    let replay = opt(args, "--replay")
        .map(|s| match s {
            "on" => Ok(true),
            "off" => Ok(false),
            other => Err(format!("--replay takes `on` or `off`, not `{other}`")),
        })
        .transpose()?;
    let packing = opt(args, "--packing")
        .map(|s| match s {
            "on" => Ok(true),
            "off" => Ok(false),
            other => Err(format!("--packing takes `on` or `off`, not `{other}`")),
        })
        .transpose()?;
    let collapse = opt(args, "--collapse")
        .map(|s| match s {
            "on" => Ok(true),
            "off" => Ok(false),
            other => Err(format!("--collapse takes `on` or `off`, not `{other}`")),
        })
        .transpose()?
        .unwrap_or(false);
    let batch = opt(args, "--batch")
        .map(|s| {
            s.parse::<usize>()
                .map_err(|_| "--batch takes a number of patterns (0 = one batch)")
        })
        .transpose()?;
    // --jobs implies the parallel backend, --batch the adaptive one,
    // unless --backend overrides.
    let backend_name = opt(args, "--backend").unwrap_or(if batch.is_some() {
        "adaptive"
    } else if jobs.is_some() {
        "parallel"
    } else {
        "concurrent"
    });
    let sharded = matches!(backend_name, "parallel" | "adaptive");
    if !sharded {
        if jobs.is_some() {
            return Err(format!(
                "--jobs requires the parallel or adaptive backend, not `{backend_name}`"
            ));
        }
        if opt(args, "--shard-strategy").is_some() {
            return Err(format!(
                "--shard-strategy requires the parallel or adaptive backend, not `{backend_name}`"
            ));
        }
    }
    if replay.is_some() && backend_name != "parallel" {
        return Err(if backend_name == "adaptive" {
            "--replay has no effect on the adaptive backend: its batching is built on the \
             good tape, which is always recorded and replayed"
                .to_string()
        } else {
            format!("--replay requires the parallel backend, not `{backend_name}`")
        });
    }
    if batch.is_some() && backend_name != "adaptive" {
        return Err(format!(
            "--batch requires the adaptive backend, not `{backend_name}`"
        ));
    }
    if flag(args, "--json") && flag(args, "--serial") {
        return Err(
            "--serial has no place in the --json artifact; run --backend serial --json as its \
             own campaign"
                .into(),
        );
    }
    let backend = match backend_name {
        "serial" => Backend::Serial(SerialConfig::paper()),
        "concurrent" => Backend::Concurrent(ConcurrentConfig::paper()),
        "parallel" => Backend::Parallel(ParallelConfig {
            jobs: jobs.unwrap_or(Jobs::Auto),
            strategy,
            ..ParallelConfig::auto()
        }),
        "adaptive" => Backend::Adaptive(AdaptiveConfig {
            jobs: jobs.unwrap_or(Jobs::Auto),
            initial_strategy: strategy,
            ..AdaptiveConfig::paper(batch.unwrap_or(DEFAULT_BATCH))
        }),
        other => {
            return Err(format!(
                "unknown backend `{other}` (serial|concurrent|parallel|adaptive)"
            ))
        }
    };
    let mut backend = backend;
    if let Some(p) = packing {
        match &mut backend {
            Backend::Serial(_) => {
                return Err(format!(
                    "--packing requires a concurrent-family backend, not `{backend_name}`"
                ))
            }
            Backend::Concurrent(c) => c.packing = p,
            Backend::Parallel(c) => c.sim.packing = p,
            Backend::Adaptive(c) => c.sim.packing = p,
        }
    }
    let backend = backend;
    let pool = match backend {
        Backend::Parallel(_) => format!(" [jobs {}, {}]", jobs.unwrap_or(Jobs::Auto), strategy),
        Backend::Adaptive(c) => format!(
            " [jobs {}, batch {}]",
            jobs.unwrap_or(Jobs::Auto),
            if c.batch == 0 {
                "all".to_string()
            } else {
                c.batch.to_string()
            }
        ),
        _ => String::new(),
    };
    eprintln!(
        "{} faults, {} patterns, observing {} output(s), backend {}{}",
        universe.len(),
        patterns.len(),
        outputs.len(),
        backend.name(),
        pool,
    );

    // An attached --metrics registry records; the default null
    // registry is a no-op, so the campaign wiring is unconditional.
    let metrics_path = opt(args, "--metrics");
    let registry = if metrics_path.is_some() {
        Registry::new()
    } else {
        Registry::null()
    };
    let mut campaign = Campaign::new(&net)
        .faults(universe.clone())
        .patterns(&patterns)
        .outputs(&outputs)
        .backend(backend)
        .collapse(collapse)
        .with_telemetry(&registry);
    if let Some(cov) = opt(args, "--stop-at-coverage") {
        let cov: f64 = cov
            .parse()
            .map_err(|_| "--stop-at-coverage takes a fraction")?;
        if !(0.0..=1.0).contains(&cov) {
            return Err(format!(
                "--stop-at-coverage takes a fraction in [0, 1], not {cov}"
            ));
        }
        campaign = campaign.stop_at_coverage(cov);
    }
    if let Some(n) = opt(args, "--pattern-limit") {
        let n: usize = n.parse().map_err(|_| "--pattern-limit takes a number")?;
        campaign = campaign.pattern_limit(n);
    }
    if let Some(reuse) = replay {
        campaign = campaign.reuse_good_tape(reuse);
    }
    let report = campaign.run();

    if let Some(path) = metrics_path {
        let text = if path.ends_with(".json") {
            registry.to_json()
        } else {
            registry.to_prometheus()
        };
        std::fs::write(path, &text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!(
            "metrics: {} counter(s), {} gauge(s), {} histogram(s) -> {path}",
            report.metrics.counters.len(),
            report.metrics.gauges.len(),
            report.metrics.histograms.len(),
        );
    }

    if flag(args, "--json") {
        println!("{}", report.to_json());
        return Ok(());
    }
    println!(
        "detected {}/{} faults ({:.1}% coverage) in {:.3}s [{}]",
        report.detected(),
        report.run.num_faults,
        report.coverage() * 100.0,
        report.wall_seconds,
        report.backend,
    );
    // Echo what `--jobs auto` and the tape knob actually resolved to —
    // the plan is otherwise invisible to the user. (Resolution order:
    // jobs first, shard count from the resolved workers, tape only
    // when more than one shard exists.)
    if let (Some(jobs), Some(shards)) = (report.jobs, report.shards) {
        let tape = match (report.tape_record_seconds, report.tape_groups) {
            (Some(secs), Some(groups)) => {
                format!("good tape replayed ({groups} groups recorded in {secs:.3}s)")
            }
            _ if report.control.reuse_good_tape && shards <= 1 => {
                "good tape skipped (single shard)".to_string()
            }
            _ => "good machine recomputed per shard".to_string(),
        };
        println!(
            "{} plan: {jobs} worker(s) x {shards} shard(s), {tape}",
            report.backend
        );
    }
    if !report.batches.is_empty() {
        let moved: usize = report.batches.iter().map(|b| b.moved_faults).sum();
        let last = report.batches.last().expect("non-empty");
        println!(
            "adaptive: {} batch(es), {} fault moves, imbalance {:.2} (first) -> {:.2} (last), \
             final plan {} worker(s) x {} shard(s)",
            report.batches.len(),
            moved,
            report.batches[0].imbalance,
            last.imbalance,
            last.workers,
            last.shards,
        );
    }
    for d in report.detections() {
        println!(
            "  pattern {:>4} phase {}: {}{}",
            d.pattern + 1,
            d.phase + 1,
            universe.fault(d.fault).describe(&net),
            if d.is_potential() {
                " (potential, X)"
            } else {
                ""
            }
        );
    }
    let detected: std::collections::HashSet<_> =
        report.detections().iter().map(|d| d.fault).collect();
    let missed: Vec<_> = universe
        .iter()
        .filter(|(id, _)| !detected.contains(id))
        .collect();
    if !missed.is_empty() {
        println!("undetected ({}):", missed.len());
        for (_, f) in missed {
            println!("  {}", f.describe(&net));
        }
    }

    if flag(args, "--serial") {
        let sreport = Campaign::new(&net)
            .faults(universe)
            .patterns(&patterns)
            .outputs(&outputs)
            .backend(Backend::Serial(SerialConfig::paper()))
            .run();
        println!(
            "serial reference: detected {}/{} in {:.3}s ({:.1}x {})",
            sreport.detected(),
            sreport.run.num_faults,
            sreport.wall_seconds,
            sreport.wall_seconds / report.wall_seconds,
            report.backend,
        );
    }
    Ok(())
}

fn resolve_addr(args: &[String]) -> Result<std::net::SocketAddr, String> {
    use std::net::ToSocketAddrs;
    let spec = opt(args, "--addr").ok_or("--addr HOST:PORT is required")?;
    spec.to_socket_addrs()
        .map_err(|e| format!("cannot resolve `{spec}`: {e}"))?
        .next()
        .ok_or_else(|| format!("`{spec}` resolves to no address"))
}

/// Starts the campaign server and serves until killed. The bound
/// address goes to stdout first so scripts can capture it even when
/// `--addr` leaves the port at 0.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    use fmossim::serve::{Server, ServerConfig};
    let mut config = ServerConfig::default();
    if let Some(addr) = opt(args, "--addr") {
        config.addr = addr.to_string();
    }
    if let Some(w) = opt(args, "--workers") {
        config.workers = w
            .parse()
            .map_err(|_| format!("--workers takes a number, not `{w}`"))?;
    }
    if let Some(mb) = opt(args, "--cache-mb") {
        let mb: usize = mb
            .parse()
            .map_err(|_| format!("--cache-mb takes a number, not `{mb}`"))?;
        config.cache_bytes = mb << 20;
    }
    if let Some(s) = opt(args, "--default-shards") {
        config.default_shards = s
            .parse()
            .map_err(|_| format!("--default-shards takes a number, not `{s}`"))?;
    }
    let server = Server::bind(&config).map_err(|e| format!("bind `{}`: {e}", config.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    println!("listening on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run().map_err(|e| e.to_string())
}

/// Builds the `POST /campaigns` JSON body from the CLI arguments —
/// either the zoo form or the inline netlist + stimulus form.
fn submission_body(args: &[String]) -> Result<String, String> {
    use fmossim::campaign::json::{obj, Value};
    use fmossim::serve::proto::patterns_to_json;
    let mut fields: Vec<(&str, Value)> = Vec::new();
    let positional: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--")
                && (*i == 0
                    || !args[i - 1].starts_with("--")
                    || args[i - 1] == "--no-wait"
                    || args[i - 1] == "--json")
        })
        .map(|(_, a)| a)
        .collect();
    match (opt(args, "--circuit"), positional.first()) {
        (Some(circuit), None) => fields.push(("circuit", Value::Str(circuit.to_string()))),
        (None, Some(path)) => {
            let net = load(path)?;
            let stim_path = opt(args, "--stim").ok_or("inline submissions need --stim <file>")?;
            let stim = std::fs::read_to_string(stim_path)
                .map_err(|e| format!("cannot read `{stim_path}`: {e}"))?;
            let patterns = parse_stim(&net, &stim)?;
            let outputs = opt(args, "--outputs").ok_or("inline submissions need --outputs")?;
            let output_names: Vec<Value> = node_list(&net, outputs)?
                .into_iter()
                .map(|id| Value::Str(net.node(id).name.clone()))
                .collect();
            let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
            fields.push(("netlist", Value::Str(text)));
            fields.push(("outputs", Value::Arr(output_names)));
            fields.push(("patterns", patterns_to_json(&net, &patterns)));
        }
        (Some(_), Some(_)) => return Err("give --circuit or a netlist file, not both".into()),
        (None, None) => return Err("submit needs --circuit <zoo-name> or a netlist file".into()),
    }
    if let Some(u) = opt(args, "--universe") {
        fields.push(("universe", Value::Str(u.to_string())));
    }
    if let Some(s) = opt(args, "--shards") {
        let shards: usize = s
            .parse()
            .map_err(|_| format!("--shards takes a number, not `{s}`"))?;
        fields.push(("shards", Value::Num(shards as f64)));
    }
    if let Some(c) = opt(args, "--collapse") {
        let on = match c {
            "on" => true,
            "off" => false,
            other => return Err(format!("--collapse takes `on` or `off`, not `{other}`")),
        };
        fields.push(("collapse", Value::Bool(on)));
    }
    if let Some(cov) = opt(args, "--stop-at-coverage") {
        let target: f64 = cov
            .parse()
            .map_err(|_| "--stop-at-coverage takes a fraction")?;
        if !(0.0..=1.0).contains(&target) {
            return Err(format!(
                "--stop-at-coverage takes a fraction in [0, 1], not {cov}"
            ));
        }
        fields.push(("stop_at_coverage", Value::Num(target)));
    }
    if let Some(name) = opt(args, "--name") {
        fields.push(("name", Value::Str(name.to_string())));
    }
    Ok(obj(fields).to_string())
}

fn cmd_submit(args: &[String]) -> Result<(), String> {
    use fmossim::campaign::json;
    use fmossim::campaign::CampaignReport;
    use fmossim::serve::{request, sse_events};

    let addr = resolve_addr(args)?;
    let body = submission_body(args)?;
    let resp = request(addr, "POST", "/campaigns", Some(&body))
        .map_err(|e| format!("POST /campaigns: {e}"))?;
    let text = resp.body_str().map_err(|e| e.to_string())?;
    if resp.status != 202 {
        return Err(format!(
            "server rejected the submission ({}): {}",
            resp.status,
            text.trim()
        ));
    }
    let doc = json::parse(text)?;
    let id = doc
        .get("id")
        .and_then(json::Value::as_str)
        .ok_or("malformed submission response")?
        .to_string();
    // With --json, stdout carries only the final status document so
    // the command pipes cleanly; progress goes to stderr.
    let json_out = flag(args, "--json");
    let progress = |line: String| {
        if json_out {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    progress(format!("submitted {id}"));
    if flag(args, "--no-wait") {
        return Ok(());
    }

    // Stream lifecycle events until the job is terminal; sim events
    // ride the same stream but only state changes are echoed.
    let events = sse_events(addr, &format!("/campaigns/{id}/events"))
        .map_err(|e| format!("SSE stream: {e}"))?;
    for (event, data) in &events {
        if matches!(event.as_str(), "status" | "done" | "error") {
            progress(format!("[{event}] {data}"));
        }
    }

    let resp = request(addr, "GET", &format!("/campaigns/{id}"), None)
        .map_err(|e| format!("GET /campaigns/{id}: {e}"))?;
    let text = resp.body_str().map_err(|e| e.to_string())?;
    if json_out {
        println!("{text}");
        return Ok(());
    }
    let doc = json::parse(text)?;
    let status = doc
        .get("status")
        .and_then(json::Value::as_str)
        .unwrap_or("unknown");
    if status == "failed" {
        let err = doc
            .get("error")
            .and_then(json::Value::as_str)
            .unwrap_or("unknown error");
        return Err(format!("{id} failed: {err}"));
    }
    let report_value = doc.get("report").ok_or("status document has no report")?;
    let report = CampaignReport::from_json(&report_value.to_string())?;
    let cache_hit = doc.get("cache_hit").and_then(json::Value::as_bool);
    println!(
        "{id} {status}: detected {}/{} faults (coverage {:.1}%) in {:.3}s",
        report.detected(),
        report.run.num_faults,
        report.coverage() * 100.0,
        report.wall_seconds,
    );
    println!(
        "tape cache: {} (record pass {})",
        match cache_hit {
            Some(true) => "hit",
            Some(false) => "miss",
            None => "unknown",
        },
        match report.tape_record_seconds {
            Some(s) => format!("{s:.3}s"),
            None => "none".to_string(),
        },
    );
    Ok(())
}

fn cmd_cancel(args: &[String]) -> Result<(), String> {
    use fmossim::serve::request;
    let addr = resolve_addr(args)?;
    let id = args
        .iter()
        .find(|a| a.starts_with("job-"))
        .ok_or("cancel needs a job id (job-N)")?;
    let resp = request(addr, "DELETE", &format!("/campaigns/{id}"), None)
        .map_err(|e| format!("DELETE /campaigns/{id}: {e}"))?;
    let text = resp.body_str().map_err(|e| e.to_string())?;
    if resp.status != 200 {
        return Err(format!("cancel failed ({}): {}", resp.status, text.trim()));
    }
    println!("{}", text.trim());
    Ok(())
}
